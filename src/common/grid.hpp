#pragma once
/// \file grid.hpp
/// \brief Dense 2D/3D scalar grids with uniform spacing.
///
/// `Grid2` / `Grid3` are the storage for field solves and sensor frames.
/// Indices are (i,j[,k]) with i along x (fastest varying in memory), j along
/// y, k along z; `spacing` is the physical distance between nodes.

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/geometry.hpp"

namespace biochip {

/// Dense 2D grid of doubles.
class Grid2 {
 public:
  Grid2() = default;
  /// nx, ny: node counts (>=1). spacing: node pitch [m]. init: fill value.
  Grid2(std::size_t nx, std::size_t ny, double spacing, double init = 0.0);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }
  double spacing() const { return spacing_; }

  double& at(std::size_t i, std::size_t j) { return data_[index(i, j)]; }
  double at(std::size_t i, std::size_t j) const { return data_[index(i, j)]; }

  /// Unchecked accessors for verified hot loops (solver sweeps, sensor scans):
  /// bounds are a debug-only contract, compiled out under NDEBUG.
  double& at_unchecked(std::size_t i, std::size_t j) {
    return data_[index_unchecked(i, j)];
  }
  double at_unchecked(std::size_t i, std::size_t j) const {
    return data_[index_unchecked(i, j)];
  }

  /// Bilinear interpolation at physical position p (origin at node (0,0)).
  /// Positions outside the grid are clamped to the boundary.
  double sample(Vec2 p) const;

  void fill(double v);
  double min() const;
  double max() const;
  /// Sum of all node values.
  double sum() const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  std::size_t index(std::size_t i, std::size_t j) const {
    BIOCHIP_REQUIRE(i < nx_ && j < ny_, "Grid2 index out of range");
    return j * nx_ + i;
  }
  std::size_t index_unchecked(std::size_t i, std::size_t j) const {
    BIOCHIP_DBG_REQUIRE(i < nx_ && j < ny_, "Grid2 index out of range");
    return j * nx_ + i;
  }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  double spacing_ = 0.0;
  std::vector<double> data_;
};

/// Dense 3D grid of doubles.
class Grid3 {
 public:
  Grid3() = default;
  Grid3(std::size_t nx, std::size_t ny, std::size_t nz, double spacing, double init = 0.0);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t size() const { return data_.size(); }
  double spacing() const { return spacing_; }

  double& at(std::size_t i, std::size_t j, std::size_t k) { return data_[index(i, j, k)]; }
  double at(std::size_t i, std::size_t j, std::size_t k) const { return data_[index(i, j, k)]; }

  /// Unchecked accessors for verified hot loops (solver sweeps): bounds are a
  /// debug-only contract, compiled out under NDEBUG.
  double& at_unchecked(std::size_t i, std::size_t j, std::size_t k) {
    return data_[index_unchecked(i, j, k)];
  }
  double at_unchecked(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[index_unchecked(i, j, k)];
  }

  /// Memory strides for hand-written stencil loops over `data()`:
  /// node (i,j,k) lives at i + j*stride_y() + k*stride_z().
  std::size_t stride_y() const { return nx_; }
  std::size_t stride_z() const { return nx_ * ny_; }

  /// True when the two grids have identical node counts per axis.
  bool same_shape(const Grid3& o) const {
    return nx_ == o.nx_ && ny_ == o.ny_ && nz_ == o.nz_;
  }

  /// Trilinear interpolation at physical position p (origin at node (0,0,0)).
  /// Positions outside the grid are clamped to the boundary.
  double sample(Vec3 p) const;

  /// Central-difference gradient at physical position p (one-sided at edges).
  Vec3 gradient(Vec3 p) const;

  void fill(double v);
  double min() const;
  double max() const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  std::size_t index(std::size_t i, std::size_t j, std::size_t k) const {
    BIOCHIP_REQUIRE(i < nx_ && j < ny_ && k < nz_, "Grid3 index out of range");
    return (k * ny_ + j) * nx_ + i;
  }
  std::size_t index_unchecked(std::size_t i, std::size_t j, std::size_t k) const {
    BIOCHIP_DBG_REQUIRE(i < nx_ && j < ny_ && k < nz_, "Grid3 index out of range");
    return (k * ny_ + j) * nx_ + i;
  }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::size_t nz_ = 0;
  double spacing_ = 0.0;
  std::vector<double> data_;
};

}  // namespace biochip
