#include "common/linalg.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biochip {

Matrix::Matrix(std::size_t rows, std::size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  BIOCHIP_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  BIOCHIP_REQUIRE(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::operator*(const Matrix& o) const {
  BIOCHIP_REQUIRE(cols_ == o.rows_, "Matrix product dimension mismatch");
  Matrix out(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) out.at(r, c) += a * o.at(k, c);
    }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  BIOCHIP_REQUIRE(cols_ == v.size(), "Matrix-vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += at(r, c) * v[c];
  return out;
}

std::vector<double> solve_dense(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  BIOCHIP_REQUIRE(a.cols() == n && b.size() == n, "solve_dense needs square system");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(a.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) throw NumericError("solve_dense: singular matrix");
    if (pivot != col) {
      for (std::size_t c = col; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a.at(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back-substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * x[c];
    x[ri] = acc / a.at(ri, ri);
  }
  return x;
}

std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      std::vector<double> rhs) {
  const std::size_t n = diag.size();
  BIOCHIP_REQUIRE(n >= 1, "empty tridiagonal system");
  BIOCHIP_REQUIRE(lower.size() == n - 1 && upper.size() == n - 1 && rhs.size() == n,
                  "tridiagonal band sizes inconsistent");
  std::vector<double> c(n - 1, 0.0);
  double piv = diag[0];
  if (std::fabs(piv) < 1e-300) throw NumericError("tridiagonal: zero pivot");
  if (n > 1) c[0] = upper[0] / piv;
  rhs[0] /= piv;
  for (std::size_t i = 1; i < n; ++i) {
    piv = diag[i] - lower[i - 1] * c[i - 1];
    if (std::fabs(piv) < 1e-300) throw NumericError("tridiagonal: zero pivot");
    if (i < n - 1) c[i] = upper[i] / piv;
    rhs[i] = (rhs[i] - lower[i - 1] * rhs[i - 1]) / piv;
  }
  for (std::size_t i = n - 1; i-- > 0;) rhs[i] -= c[i] * rhs[i + 1];
  return rhs;
}

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  BIOCHIP_REQUIRE(x.size() == y.size() && x.size() >= 2, "fit_line needs >=2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-300) throw NumericError("fit_line: degenerate x values");
  LineFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  double ssr = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    ssr += e * e;
  }
  f.r2 = sst > 0.0 ? 1.0 - ssr / sst : 1.0;
  return f;
}

PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y) {
  BIOCHIP_REQUIRE(x.size() == y.size() && x.size() >= 2, "fit_power needs >=2 points");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    BIOCHIP_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "fit_power needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LineFit lf = fit_line(lx, ly);
  return {std::exp(lf.intercept), lf.slope, lf.r2};
}

}  // namespace biochip
