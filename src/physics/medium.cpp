#include "physics/medium.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::physics {

double Medium::permittivity() const { return rel_permittivity * constants::epsilon0; }

Medium dep_buffer() {
  return Medium{
      .conductivity = 0.030,  // 30 mS/m — typical isotonic sucrose DEP buffer
      .rel_permittivity = constants::eps_r_water,
      .viscosity = constants::eta_water,
      .density = 1020.0,  // sucrose-adjusted
      .temperature = units::celsius(25.0),
  };
}

Medium physiological_saline() {
  return Medium{
      .conductivity = 1.6,
      .rel_permittivity = constants::eps_r_water,
      .viscosity = constants::eta_water,
      .density = constants::rho_water,
      .temperature = units::celsius(25.0),
  };
}

Medium deionized_water() {
  return Medium{
      .conductivity = 5.5e-6,
      .rel_permittivity = constants::eps_r_water,
      .viscosity = constants::eta_water,
      .density = constants::rho_water,
      .temperature = units::celsius(25.0),
  };
}

void validate(const Medium& m) {
  if (!(m.conductivity > 0.0)) throw ConfigError("medium conductivity must be > 0");
  if (!(m.rel_permittivity >= 1.0)) throw ConfigError("medium rel. permittivity must be >= 1");
  if (!(m.viscosity > 0.0)) throw ConfigError("medium viscosity must be > 0");
  if (!(m.density > 0.0)) throw ConfigError("medium density must be > 0");
  if (!(m.temperature > 0.0)) throw ConfigError("medium temperature must be > 0 K");
}

}  // namespace biochip::physics
