#include "physics/levitation.hpp"

#include "common/error.hpp"
#include "physics/drag.hpp"

namespace biochip::physics {

LevitationResult levitation_equilibrium(const field::HarmonicCage& cage, double prefactor,
                                        const Medium& medium, double radius, double density,
                                        double floor_z) {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  LevitationResult out;
  // Vertical force: F(z) = prefactor * c_z * (z - z0) + F_g.
  // Stability needs dF/dz = prefactor * c_z < 0 (nDEP in a field minimum).
  const double slope = prefactor * cage.c_z;
  out.stiffness_z = -slope;
  out.stiffness_r = -prefactor * cage.c_r;
  if (!(slope < 0.0)) return out;  // pDEP or inverted cage: no levitation

  const double fg = buoyant_weight(medium, radius, density);
  const double z_eq = cage.center.z - fg / slope;
  out.height = z_eq;
  out.sag = cage.center.z - z_eq;
  // The sphere must clear the chip floor to be levitated.
  out.stable = (z_eq - radius) > floor_z;
  return out;
}

}  // namespace biochip::physics
