#pragma once
/// \file medium.hpp
/// \brief Suspending-medium properties for on-chip cell manipulation.

namespace biochip::physics {

/// Aqueous suspending medium. Plain data; factory functions provide the
/// standard laboratory buffers.
struct Medium {
  double conductivity = 0.0;      ///< σ_m [S/m]
  double rel_permittivity = 0.0;  ///< ε_r (dimensionless)
  double viscosity = 0.0;         ///< η [Pa·s]
  double density = 0.0;           ///< ρ [kg/m³]
  double temperature = 0.0;       ///< T [K]

  /// Absolute permittivity ε_m = ε_r ε₀ [F/m].
  double permittivity() const;
};

/// Low-conductivity sucrose/dextrose DEP manipulation buffer (~30 mS/m),
/// the standard medium for negative-DEP cell handling.
Medium dep_buffer();

/// Physiological saline / culture medium (~1.6 S/m). Cells in saline show
/// negative DEP across the usual drive band — relevant for viability sorting.
Medium physiological_saline();

/// De-ionized water (~5.5 µS/m), used for bead calibration experiments.
Medium deionized_water();

/// Validate that a medium is physically meaningful (positive σ, ε, η, ρ, T).
/// Throws ConfigError otherwise.
void validate(const Medium& m);

}  // namespace biochip::physics
