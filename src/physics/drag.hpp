#pragma once
/// \file drag.hpp
/// \brief Low-Reynolds hydrodynamics: Stokes drag, wall corrections,
/// sedimentation.

#include "common/geometry.hpp"
#include "physics/medium.hpp"

namespace biochip::physics {

/// Stokes drag coefficient γ = 6π η R [N·s/m].
double stokes_drag_coefficient(const Medium& medium, double radius);

/// Faxén correction multiplier for drag on a sphere translating *parallel*
/// to a plane wall at center-to-wall distance h >= R. Returns >= 1;
/// diverges as the sphere touches the wall (clamped at h = R).
double faxen_wall_correction(double radius, double wall_distance);

/// Terminal sedimentation velocity (signed; negative = sinking) for a sphere
/// of the given density in the medium [m/s].
double sedimentation_velocity(const Medium& medium, double radius, double particle_density);

/// Net gravity + buoyancy force on the sphere (z component, negative = down) [N].
double buoyant_weight(const Medium& medium, double radius, double particle_density);

/// Particle Reynolds number at speed v — sanity check that Stokes flow holds.
double particle_reynolds(const Medium& medium, double radius, double speed);

}  // namespace biochip::physics
