#pragma once
/// \file thermal.hpp
/// \brief Order-of-magnitude screens for parasitic electro-thermal effects.
///
/// The paper (§3) lists "heating and evaporation, electro-thermal flow, AC
/// electro-osmosis" among the effects that make full fluidic simulation "a
/// research topic in itself". These screens implement the standard
/// order-of-magnitude estimates (Ramos/Castellanos) so designs can at least
/// be checked for regime validity without a multi-physics solver.

#include "physics/medium.hpp"

namespace biochip::physics {

/// Steady-state Joule temperature rise near microelectrodes:
/// ΔT ≈ σ V_rms² / (8 k_th), with k_th the liquid's thermal conductivity.
double joule_temperature_rise(const Medium& medium, double v_rms,
                              double thermal_conductivity = 0.6 /* W/(m·K), water */);

/// Characteristic electro-thermal (ETF) slip velocity scale near electrodes of
/// characteristic size L at RMS voltage V [m/s] (order of magnitude).
double electrothermal_velocity_scale(const Medium& medium, double v_rms, double length,
                                     double thermal_conductivity = 0.6);

/// Characteristic AC electro-osmotic slip velocity scale u ~ Λ ε V² / (η L)
/// with Λ ≈ 0.25 at the ACEO peak frequency [m/s].
double aceo_velocity_scale(const Medium& medium, double v_rms, double length);

/// Charge-relaxation frequency of the medium f_c = σ / (2π ε) [Hz]; drive
/// frequencies well above f_c suppress ACEO and electrode screening.
double charge_relaxation_frequency(const Medium& medium);

}  // namespace biochip::physics
