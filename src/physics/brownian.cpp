#include "physics/brownian.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "physics/drag.hpp"

namespace biochip::physics {

double diffusion_coefficient(const Medium& medium, double radius) {
  return constants::kB * medium.temperature / stokes_drag_coefficient(medium, radius);
}

double rms_step(const Medium& medium, double radius, double dt) {
  BIOCHIP_REQUIRE(dt > 0.0, "time step must be positive");
  return std::sqrt(2.0 * diffusion_coefficient(medium, radius) * dt);
}

Vec3 brownian_kick(const Medium& medium, double radius, double dt, Rng& rng) {
  const double s = rms_step(medium, radius, dt);
  return {s * rng.normal(), s * rng.normal(), s * rng.normal()};
}

double thermal_escape_ratio(const Medium& medium, double trap_stiffness,
                            double capture_radius) {
  BIOCHIP_REQUIRE(capture_radius > 0.0, "capture radius must be positive");
  const double depth = 0.5 * trap_stiffness * capture_radius * capture_radius;
  if (depth <= 0.0) return 1e9;  // no trap at all
  return constants::kB * medium.temperature / depth;
}

}  // namespace biochip::physics
