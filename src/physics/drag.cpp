#include "physics/drag.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::physics {

double stokes_drag_coefficient(const Medium& medium, double radius) {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  return 6.0 * constants::pi * medium.viscosity * radius;
}

double faxen_wall_correction(double radius, double wall_distance) {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  const double h = std::max(wall_distance, radius);
  const double r = radius / h;  // in (0, 1]
  // Faxén series for translation parallel to a plane wall.
  const double denom =
      1.0 - (9.0 / 16.0) * r + (1.0 / 8.0) * r * r * r - (45.0 / 256.0) * r * r * r * r -
      (1.0 / 16.0) * r * r * r * r * r;
  // The series stays positive for r <= 1 (denom(1) ~ 0.26); guard regardless.
  return denom > 0.05 ? 1.0 / denom : 20.0;
}

double buoyant_weight(const Medium& medium, double radius, double particle_density) {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  const double volume = (4.0 / 3.0) * constants::pi * radius * radius * radius;
  return -(particle_density - medium.density) * volume * constants::g0;
}

double sedimentation_velocity(const Medium& medium, double radius, double particle_density) {
  return buoyant_weight(medium, radius, particle_density) /
         stokes_drag_coefficient(medium, radius);
}

double particle_reynolds(const Medium& medium, double radius, double speed) {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  return medium.density * std::fabs(speed) * 2.0 * radius / medium.viscosity;
}

}  // namespace biochip::physics
