#pragma once
/// \file dynamics.hpp
/// \brief Overdamped (Langevin) particle dynamics in the chamber.
///
/// At cell scale the particle Reynolds number is ~1e-5 and inertia decays in
/// microseconds, so dynamics are overdamped: velocity = force / drag. The
/// integrator is Euler-Maruyama with an optional Brownian term whose
/// amplitude is consistent with the (wall-corrected) drag via
/// fluctuation-dissipation.

#include <concepts>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "physics/brownian.hpp"
#include "physics/drag.hpp"
#include "physics/medium.hpp"

namespace biochip::physics {

/// Mobile body state for simulation. Plain data.
struct ParticleBody {
  Vec3 position;               ///< [m]
  double radius = 0.0;         ///< [m]
  double density = 0.0;        ///< [kg/m³]
  double dep_prefactor = 0.0;  ///< 2π ε_m R³ Re K [F·m]
  int id = 0;                  ///< caller-assigned identity
};

/// A callable returning ∇E_rms² at a position.
template <typename F>
concept FieldGradient = requires(F f, Vec3 p) {
  { f(p) } -> std::convertible_to<Vec3>;
};

/// Integrator configuration.
struct DynamicsOptions {
  double dt = 1e-3;             ///< step [s]
  bool brownian = true;         ///< include thermal kicks
  bool gravity = true;          ///< include buoyant weight
  bool wall_correction = true;  ///< Faxén drag enhancement near chip surface
  Aabb bounds;                  ///< chamber interior (particle centers clamped
                                ///< to bounds shrunk by the particle radius)
};

/// Overdamped integrator. Stateless apart from configuration; all randomness
/// flows through the caller's Rng.
class OverdampedIntegrator {
 public:
  OverdampedIntegrator(const Medium& medium, const DynamicsOptions& opts);

  const DynamicsOptions& options() const { return opts_; }
  const Medium& medium() const { return medium_; }

  /// Advance one particle by one step under the given field gradient.
  template <FieldGradient GradFn>
  void step(ParticleBody& p, GradFn&& grad_erms2, Rng& rng) const {
    double gamma = stokes_drag_coefficient(medium_, p.radius);
    if (opts_.wall_correction) {
      const double wall_gap = p.position.z - opts_.bounds.min.z;
      gamma *= faxen_wall_correction(p.radius, std::max(wall_gap, p.radius));
    }
    Vec3 force = static_cast<Vec3>(grad_erms2(p.position)) * p.dep_prefactor;
    if (opts_.gravity) force.z += buoyant_weight(medium_, p.radius, p.density);
    Vec3 dx = force * (opts_.dt / gamma);
    if (opts_.brownian) {
      const double s =
          std::sqrt(2.0 * constants::kB * medium_.temperature * opts_.dt / gamma);
      dx += Vec3{s * rng.normal(), s * rng.normal(), s * rng.normal()};
    }
    p.position += dx;
    confine(p);
  }

  /// Advance a population by `steps` steps (serial; one shared RNG stream).
  template <FieldGradient GradFn>
  void advance(std::vector<ParticleBody>& particles, GradFn&& grad_erms2, Rng& rng,
               std::size_t steps) const {
    for (std::size_t s = 0; s < steps; ++s)
      for (ParticleBody& p : particles) step(p, grad_erms2, rng);
  }

  /// Advance a population by `steps` steps with the particle loop fanned out
  /// over an executor (anything with `parallel_for(begin, end, chunk_fn)`,
  /// e.g. core::ThreadPool). Each particle integrates on its own
  /// counter-based child stream (Rng::fork), so the trajectory of every
  /// particle is independent of the executor's size and chunking — the same
  /// seed gives the same population on 1 thread or 16. Draws one split from
  /// `rng` so back-to-back calls use fresh streams. Note the streams differ
  /// from the serial overload's shared-stream draws by construction.
  template <FieldGradient GradFn, typename Executor>
  void advance(std::vector<ParticleBody>& particles, GradFn&& grad_erms2, Rng& rng,
               std::size_t steps, Executor& executor) const {
    const Rng base = rng.split();
    executor.parallel_for(0, particles.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t n = b; n < e; ++n) {
        Rng stream = base.fork(n);
        for (std::size_t s = 0; s < steps; ++s) step(particles[n], grad_erms2, stream);
      }
    });
  }

  /// Suggested stable time step for a trap of the given stiffness: the
  /// relaxation time γ/k divided by a safety factor.
  double suggested_dt(double trap_stiffness, double radius, double safety = 10.0) const;

 private:
  void confine(ParticleBody& p) const;

  Medium medium_;
  DynamicsOptions opts_;
};

}  // namespace biochip::physics
