#pragma once
/// \file dielectrics.hpp
/// \brief Complex permittivities, Clausius-Mossotti factor, and the
/// single-shell cell model.
///
/// Frequency-domain dielectric response of particles in an AC field:
///   ε*(ω) = ε − j σ/ω
///   K(ω)  = (ε_p* − ε_m*) / (ε_p* + 2 ε_m*)       (Clausius-Mossotti)
/// Re K ∈ [−0.5, 1]; Re K > 0 ⇒ positive DEP (pull to field maxima),
/// Re K < 0 ⇒ negative DEP (push to minima — the paper's levitated cages).
/// Living cells are modelled as a thin insulating membrane (shell) around a
/// conductive cytoplasm; membrane breakdown on cell death collapses the shell
/// and flips the DEP response — the physical basis of viability sorting.

#include <complex>
#include <optional>
#include <vector>

#include "physics/medium.hpp"

namespace biochip::physics {

/// Homogeneous dielectric description of a material.
struct DielectricMaterial {
  double rel_permittivity = 0.0;  ///< ε_r
  double conductivity = 0.0;      ///< σ [S/m]
};

/// Complex permittivity ε* = ε_r ε₀ − j σ/ω at angular frequency ω [rad/s].
std::complex<double> complex_permittivity(const DielectricMaterial& m, double omega);

/// Clausius-Mossotti factor from complex permittivities.
std::complex<double> clausius_mossotti(std::complex<double> eps_particle,
                                       std::complex<double> eps_medium);

/// Single-shell model: sphere of outer radius `radius` with a shell of
/// thickness `shell_thickness` (membrane) over a homogeneous core (cytoplasm).
/// Returns the equivalent homogeneous complex permittivity.
std::complex<double> shelled_sphere_permittivity(const DielectricMaterial& shell,
                                                 const DielectricMaterial& core,
                                                 double radius, double shell_thickness,
                                                 double omega);

/// Dielectric description of a (possibly multi-shelled) spherical particle.
/// Compartments from the outside in: membrane `shell` (optional), `body`
/// (cytoplasm or whole bead), and an optional `nucleus` occupying
/// `nucleus_radius_fraction` of the inner radius (two-shell model for
/// nucleated cells; Irimajiri's multi-shell reduction applied innermost-out).
struct ParticleDielectric {
  DielectricMaterial body;                      ///< cytoplasm (or whole body)
  std::optional<DielectricMaterial> shell;      ///< membrane, if shelled
  double shell_thickness = 0.0;                 ///< [m]; used only when shell is set
  std::optional<DielectricMaterial> nucleus;    ///< innermost compartment
  double nucleus_radius_fraction = 0.0;         ///< r_nucleus / r_inner, in (0,1)

  /// Equivalent complex permittivity at angular frequency ω for a particle of
  /// the given outer radius.
  std::complex<double> effective_permittivity(double radius, double omega) const;
};

/// Clausius-Mossotti factor of a particle of `radius` in `medium` at drive
/// frequency f [Hz].
std::complex<double> cm_factor(const ParticleDielectric& particle, double radius,
                               const Medium& medium, double frequency);

/// Lowest DEP crossover frequency (Re K = 0) in [f_lo, f_hi], found by
/// log-scan + bisection. Empty when Re K does not change sign in the band.
std::optional<double> crossover_frequency(const ParticleDielectric& particle, double radius,
                                          const Medium& medium, double f_lo = 1e3,
                                          double f_hi = 1e9);

/// Sampled Re K spectrum over a log-spaced frequency grid (for reports).
struct CmSpectrumPoint {
  double frequency = 0.0;
  double re_k = 0.0;
  double im_k = 0.0;
};
std::vector<CmSpectrumPoint> cm_spectrum(const ParticleDielectric& particle, double radius,
                                         const Medium& medium, double f_lo, double f_hi,
                                         std::size_t points);

}  // namespace biochip::physics
