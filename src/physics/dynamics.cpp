#include "physics/dynamics.hpp"

#include "common/error.hpp"

namespace biochip::physics {

OverdampedIntegrator::OverdampedIntegrator(const Medium& medium, const DynamicsOptions& opts)
    : medium_(medium), opts_(opts) {
  validate(medium);
  BIOCHIP_REQUIRE(opts.dt > 0.0, "time step must be positive");
  BIOCHIP_REQUIRE(opts.bounds.extent().x > 0.0 && opts.bounds.extent().y > 0.0 &&
                      opts.bounds.extent().z > 0.0,
                  "dynamics bounds must be a non-empty box");
}

void OverdampedIntegrator::confine(ParticleBody& p) const {
  // A rigid sphere cannot penetrate the chip surface, lid, or side walls:
  // clamp the center to the bounds shrunk by the radius (hard-contact model).
  const Aabb& b = opts_.bounds;
  const double r = p.radius;
  p.position.x = clamp(p.position.x, b.min.x + r, b.max.x - r);
  p.position.y = clamp(p.position.y, b.min.y + r, b.max.y - r);
  p.position.z = clamp(p.position.z, b.min.z + r, b.max.z - r);
}

double OverdampedIntegrator::suggested_dt(double trap_stiffness, double radius,
                                          double safety) const {
  BIOCHIP_REQUIRE(trap_stiffness > 0.0, "trap stiffness must be positive");
  BIOCHIP_REQUIRE(safety >= 1.0, "safety factor must be >= 1");
  const double gamma = stokes_drag_coefficient(medium_, radius);
  return gamma / trap_stiffness / safety;
}

}  // namespace biochip::physics
