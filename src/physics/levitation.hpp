#pragma once
/// \file levitation.hpp
/// \brief Equilibrium of a particle levitated in a closed nDEP cage — the
/// paper's "cells trapped in levitation" operating point (claim C1).

#include "field/analytic.hpp"
#include "physics/medium.hpp"

namespace biochip::physics {

/// Result of the force-balance analysis inside a harmonic cage.
struct LevitationResult {
  bool stable = false;       ///< cage holds the particle against gravity
  double height = 0.0;       ///< equilibrium z of the particle center [m]
  double sag = 0.0;          ///< cage center z minus equilibrium z [m]
  double stiffness_z = 0.0;  ///< net vertical stiffness at equilibrium [N/m]
  double stiffness_r = 0.0;  ///< radial stiffness [N/m]
};

/// Solve the vertical force balance  F_DEP(z) + F_gravity = 0 inside `cage`
/// for a particle of the given radius/density/DEP prefactor.
/// `floor_z` is the chip surface; if the equilibrium would place the sphere
/// into the floor, the result is flagged unstable (particle rests on chip).
LevitationResult levitation_equilibrium(const field::HarmonicCage& cage, double prefactor,
                                        const Medium& medium, double radius, double density,
                                        double floor_z = 0.0);

}  // namespace biochip::physics
