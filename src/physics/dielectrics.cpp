#include "physics/dielectrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::physics {

std::complex<double> complex_permittivity(const DielectricMaterial& m, double omega) {
  BIOCHIP_REQUIRE(omega > 0.0, "angular frequency must be positive");
  return {m.rel_permittivity * constants::epsilon0, -m.conductivity / omega};
}

std::complex<double> clausius_mossotti(std::complex<double> eps_particle,
                                       std::complex<double> eps_medium) {
  return (eps_particle - eps_medium) / (eps_particle + 2.0 * eps_medium);
}

std::complex<double> shelled_sphere_permittivity(const DielectricMaterial& shell,
                                                 const DielectricMaterial& core,
                                                 double radius, double shell_thickness,
                                                 double omega) {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  BIOCHIP_REQUIRE(shell_thickness > 0.0 && shell_thickness < radius,
                  "shell thickness must be in (0, radius)");
  const std::complex<double> es = complex_permittivity(shell, omega);
  const std::complex<double> ec = complex_permittivity(core, omega);
  const double ratio = radius / (radius - shell_thickness);
  const double gamma = ratio * ratio * ratio;
  const std::complex<double> delta = (ec - es) / (ec + 2.0 * es);
  return es * (gamma + 2.0 * delta) / (gamma - delta);
}

namespace {
// Combine a core of complex permittivity `ec` (radius r_core) inside a shell
// material `sh` of outer radius r_outer.
std::complex<double> wrap_shell(std::complex<double> ec,
                                const DielectricMaterial& sh, double r_outer,
                                double r_core, double omega) {
  const std::complex<double> es = complex_permittivity(sh, omega);
  const double ratio = r_outer / r_core;
  const double gamma = ratio * ratio * ratio;
  const std::complex<double> delta = (ec - es) / (ec + 2.0 * es);
  return es * (gamma + 2.0 * delta) / (gamma - delta);
}
}  // namespace

std::complex<double> ParticleDielectric::effective_permittivity(double radius,
                                                                double omega) const {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  const double r_inner = shell.has_value() ? radius - shell_thickness : radius;
  // Innermost out: fold the nucleus into the cytoplasm first.
  std::complex<double> core = complex_permittivity(body, omega);
  if (nucleus.has_value()) {
    BIOCHIP_REQUIRE(nucleus_radius_fraction > 0.0 && nucleus_radius_fraction < 1.0,
                    "nucleus radius fraction must be in (0,1)");
    const double r_nuc = nucleus_radius_fraction * r_inner;
    core = wrap_shell(complex_permittivity(*nucleus, omega), body, r_inner, r_nuc,
                      omega);
  }
  if (shell.has_value()) {
    BIOCHIP_REQUIRE(shell_thickness > 0.0 && shell_thickness < radius,
                    "shell thickness must be in (0, radius)");
    return wrap_shell(core, *shell, radius, r_inner, omega);
  }
  return core;
}

std::complex<double> cm_factor(const ParticleDielectric& particle, double radius,
                               const Medium& medium, double frequency) {
  BIOCHIP_REQUIRE(frequency > 0.0, "frequency must be positive");
  const double omega = 2.0 * constants::pi * frequency;
  const std::complex<double> ep = particle.effective_permittivity(radius, omega);
  const DielectricMaterial med{medium.rel_permittivity, medium.conductivity};
  const std::complex<double> em = complex_permittivity(med, omega);
  return clausius_mossotti(ep, em);
}

std::optional<double> crossover_frequency(const ParticleDielectric& particle, double radius,
                                          const Medium& medium, double f_lo, double f_hi) {
  BIOCHIP_REQUIRE(f_lo > 0.0 && f_hi > f_lo, "invalid frequency band");
  auto re_k = [&](double f) { return cm_factor(particle, radius, medium, f).real(); };

  // Log-spaced scan for a sign change.
  constexpr std::size_t kScan = 200;
  double prev_f = f_lo;
  double prev_v = re_k(f_lo);
  const double ratio = std::pow(f_hi / f_lo, 1.0 / static_cast<double>(kScan));
  for (std::size_t s = 1; s <= kScan; ++s) {
    const double f = f_lo * std::pow(ratio, static_cast<double>(s));
    const double v = re_k(f);
    if (prev_v == 0.0) return prev_f;
    if (prev_v * v < 0.0) {
      // Bisection in log space.
      double lo = prev_f, hi = f, vlo = prev_v;
      for (int it = 0; it < 80; ++it) {
        const double mid = std::sqrt(lo * hi);
        const double vm = re_k(mid);
        if (vlo * vm <= 0.0) {
          hi = mid;
        } else {
          lo = mid;
          vlo = vm;
        }
      }
      return std::sqrt(lo * hi);
    }
    prev_f = f;
    prev_v = v;
  }
  return std::nullopt;
}

std::vector<CmSpectrumPoint> cm_spectrum(const ParticleDielectric& particle, double radius,
                                         const Medium& medium, double f_lo, double f_hi,
                                         std::size_t points) {
  BIOCHIP_REQUIRE(points >= 2, "spectrum needs at least two points");
  BIOCHIP_REQUIRE(f_lo > 0.0 && f_hi > f_lo, "invalid frequency band");
  std::vector<CmSpectrumPoint> out;
  out.reserve(points);
  const double ratio = std::pow(f_hi / f_lo, 1.0 / static_cast<double>(points - 1));
  for (std::size_t i = 0; i < points; ++i) {
    const double f = f_lo * std::pow(ratio, static_cast<double>(i));
    const std::complex<double> k = cm_factor(particle, radius, medium, f);
    out.push_back({f, k.real(), k.imag()});
  }
  return out;
}

}  // namespace biochip::physics
