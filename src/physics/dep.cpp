#include "physics/dep.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "physics/drag.hpp"

namespace biochip::physics {

double dep_prefactor(const Medium& medium, double radius, double re_k) {
  BIOCHIP_REQUIRE(radius > 0.0, "particle radius must be positive");
  return 2.0 * constants::pi * medium.permittivity() * radius * radius * radius * re_k;
}

Vec3 dep_force(double prefactor, Vec3 grad_erms2) { return grad_erms2 * prefactor; }

TrapStiffness trap_stiffness(const field::HarmonicCage& cage, double prefactor) {
  // Restoring force for displacement d: F = prefactor * c * d; stiffness is
  // -dF/dd = -prefactor * c. Stable (positive) when prefactor < 0 (nDEP) and
  // curvature > 0 (field minimum).
  return {-prefactor * cage.c_r, -prefactor * cage.c_z};
}

double holding_force(const field::HarmonicCage& cage, double prefactor,
                     double capture_radius) {
  BIOCHIP_REQUIRE(capture_radius > 0.0, "capture radius must be positive");
  const TrapStiffness k = trap_stiffness(cage, prefactor);
  const double k_min = std::min(k.radial, k.vertical);
  return k_min > 0.0 ? k_min * capture_radius : 0.0;
}

double max_tow_speed(const field::HarmonicCage& cage, double prefactor,
                     double capture_radius, const Medium& medium, double particle_radius) {
  const double hold = holding_force(cage, prefactor, capture_radius);
  const double gamma = stokes_drag_coefficient(medium, particle_radius);
  return hold / gamma;
}

}  // namespace biochip::physics
