#pragma once
/// \file dep.hpp
/// \brief Time-averaged dielectrophoretic force and trap figures of merit.
///
/// F_DEP = 2π ε_m R³ Re[K(ω)] ∇E_rms² — the paper's actuation principle.
/// The V² dependence (E ∝ V for fixed geometry ⇒ F ∝ V²) is what makes
/// *older, higher-voltage CMOS nodes* preferable for actuation (claim C2).

#include "common/geometry.hpp"
#include "field/analytic.hpp"
#include "physics/medium.hpp"

namespace biochip::physics {

/// DEP prefactor 2π ε_m R³ Re K [F·m] — multiply by ∇E_rms² for the force.
/// Negative for nDEP particles.
double dep_prefactor(const Medium& medium, double radius, double re_k);

/// DEP force at a point given the field's ∇E_rms².
Vec3 dep_force(double prefactor, Vec3 grad_erms2);

/// Trap (cage) stiffness [N/m]: restoring-force gradient of a harmonic cage
/// for a particle with the given prefactor. Positive = stable trap.
struct TrapStiffness {
  double radial = 0.0;    ///< k_r [N/m]
  double vertical = 0.0;  ///< k_z [N/m]
};
TrapStiffness trap_stiffness(const field::HarmonicCage& cage, double prefactor);

/// Maximum holding force the quadratic cage can exert before the particle
/// leaves the harmonic region (taken as radius `capture_radius`) [N].
double holding_force(const field::HarmonicCage& cage, double prefactor,
                     double capture_radius);

/// Maximum cage translation speed [m/s] before viscous drag exceeds the
/// holding force: v_max = F_hold / γ. This bounds the paper's 10-100 µm/s
/// cell manipulation speeds.
double max_tow_speed(const field::HarmonicCage& cage, double prefactor,
                     double capture_radius, const Medium& medium, double particle_radius);

}  // namespace biochip::physics
