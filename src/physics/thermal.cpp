#include "physics/thermal.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace biochip::physics {

double joule_temperature_rise(const Medium& medium, double v_rms,
                              double thermal_conductivity) {
  BIOCHIP_REQUIRE(thermal_conductivity > 0.0, "thermal conductivity must be positive");
  return medium.conductivity * v_rms * v_rms / (8.0 * thermal_conductivity);
}

double electrothermal_velocity_scale(const Medium& medium, double v_rms, double length,
                                     double thermal_conductivity) {
  BIOCHIP_REQUIRE(length > 0.0, "length scale must be positive");
  // u_ETF ~ (ε/η) (ΔT/T) (V²/L) * M, with M ~ 0.1 a dimensionless factor and
  // ΔT the Joule rise. Order-of-magnitude only.
  const double dT = joule_temperature_rise(medium, v_rms, thermal_conductivity);
  const double m_factor = 0.1;
  return m_factor * medium.permittivity() * v_rms * v_rms * dT /
         (medium.temperature * medium.viscosity * length);
}

double aceo_velocity_scale(const Medium& medium, double v_rms, double length) {
  BIOCHIP_REQUIRE(length > 0.0, "length scale must be positive");
  const double lambda = 0.25;
  return lambda * medium.permittivity() * v_rms * v_rms / (medium.viscosity * length);
}

double charge_relaxation_frequency(const Medium& medium) {
  return medium.conductivity / (2.0 * constants::pi * medium.permittivity());
}

}  // namespace biochip::physics
