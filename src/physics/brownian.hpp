#pragma once
/// \file brownian.hpp
/// \brief Thermal (Brownian) motion of suspended particles.

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "physics/medium.hpp"

namespace biochip::physics {

/// Stokes-Einstein diffusion coefficient D = kT / (6π η R) [m²/s].
double diffusion_coefficient(const Medium& medium, double radius);

/// RMS displacement per axis over time dt: √(2 D dt) [m].
double rms_step(const Medium& medium, double radius, double dt);

/// One isotropic Brownian displacement sample over dt.
Vec3 brownian_kick(const Medium& medium, double radius, double dt, Rng& rng);

/// Trap-confinement ratio: thermal energy kT vs. trap depth ½ k x_max².
/// Values << 1 mean the particle stays caged; >~1 means thermal escape.
double thermal_escape_ratio(const Medium& medium, double trap_stiffness,
                            double capture_radius);

}  // namespace biochip::physics
