#include "control/events.hpp"

#include <ostream>

namespace biochip::control {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kEscapeInjected: return "escape_injected";
    case EventKind::kCellLost: return "cell_lost";
    case EventKind::kRecaptureStarted: return "recapture_started";
    case EventKind::kCellRecaptured: return "cell_recaptured";
    case EventKind::kRerouted: return "rerouted";
    case EventKind::kCongestionStall: return "congestion_stall";
    case EventKind::kDelivered: return "delivered";
    case EventKind::kDeliveryFailed: return "delivery_failed";
    case EventKind::kTransferRequested: return "transfer_requested";
    case EventKind::kTransferAdmitted: return "transfer_admitted";
    case EventKind::kTransferDenied: return "transfer_denied";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kSensorFault: return "sensor_fault";
    case EventKind::kPortDown: return "port_down";
    case EventKind::kPortRestored: return "port_restored";
    case EventKind::kPortFailed: return "port_failed";
    case EventKind::kSiteQuarantined: return "site_quarantined";
    case EventKind::kSiteRehabilitated: return "site_rehabilitated";
    case EventKind::kHealthDegraded: return "health_degraded";
    case EventKind::kHealthQuarantined: return "health_quarantined";
    case EventKind::kHealthRecovered: return "health_recovered";
    case EventKind::kRecaptureFailed: return "recapture_failed";
    case EventKind::kRescueStarted: return "rescue_started";
    case EventKind::kTransferRerouted: return "transfer_rerouted";
    case EventKind::kTransferTimedOut: return "transfer_timed_out";
    case EventKind::kAdmissionDeferred: return "admission_deferred";
    case EventKind::kAdmissionShed: return "admission_shed";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, const ControlEvent& e) {
  return os << "t=" << e.tick << " cage " << e.cage_id << " @" << e.site << " "
            << to_string(e.kind);
}

std::size_t count_events(const std::vector<ControlEvent>& events, EventKind kind) {
  std::size_t n = 0;
  for (const ControlEvent& e : events)
    if (e.kind == kind) ++n;
  return n;
}

}  // namespace biochip::control
