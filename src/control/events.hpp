#pragma once
/// \file events.hpp
/// \brief Events emitted by the closed-loop supervisor.
///
/// Every reaction of the control loop is recorded as a typed event so
/// episodes are auditable after the fact: tests assert on the sequence
/// (lost → recapture → recaptured → rerouted → delivered), demos narrate it,
/// and the report's failure accounting is grounded in explicit events rather
/// than in silent state.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/geometry.hpp"

namespace biochip::control {

enum class EventKind : std::uint8_t {
  kEscapeInjected,    ///< fault injection displaced a trapped cell (ground truth)
  kCellLost,          ///< tracker hysteresis confirmed a cage lost its cell
  kRecaptureStarted,  ///< supervisor routed the cage toward a stray detection
  kCellRecaptured,    ///< tracker confirmed the cage holds a cell again
  kRerouted,          ///< route re-planned online (defect ahead or congestion)
  kCongestionStall,   ///< actuation step stalled on a separation clash
  kDelivered,         ///< cage at its goal with a confirmed cell
  kDeliveryFailed,    ///< episode ended with this cage undelivered
  // Cross-chamber handoff (multi-chamber orchestration):
  kTransferRequested,  ///< source cage parked at its port; handoff requested
  kTransferAdmitted,   ///< destination chamber admitted + routed the cage
  kTransferDenied,     ///< admission denied (congestion / no route); backoff
};

const char* to_string(EventKind kind);

/// One supervisory event. `site` is the cage's site when the event fired.
struct ControlEvent {
  int tick = 0;
  EventKind kind = EventKind::kCellLost;
  int cage_id = 0;
  GridCoord site;
};

std::ostream& operator<<(std::ostream& os, const ControlEvent& e);

/// Number of events of one kind (report/test helper).
std::size_t count_events(const std::vector<ControlEvent>& events, EventKind kind);

}  // namespace biochip::control
