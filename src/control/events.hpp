#pragma once
/// \file events.hpp
/// \brief Events emitted by the closed-loop supervisor.
///
/// Every reaction of the control loop is recorded as a typed event so
/// episodes are auditable after the fact: tests assert on the sequence
/// (lost → recapture → recaptured → rerouted → delivered), demos narrate it,
/// and the report's failure accounting is grounded in explicit events rather
/// than in silent state.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/geometry.hpp"

namespace biochip::control {

enum class EventKind : std::uint8_t {
  kEscapeInjected,    ///< fault injection displaced a trapped cell (ground truth)
  kCellLost,          ///< tracker hysteresis confirmed a cage lost its cell
  kRecaptureStarted,  ///< supervisor routed the cage toward a stray detection
  kCellRecaptured,    ///< tracker confirmed the cage holds a cell again
  kRerouted,          ///< route re-planned online (defect ahead or congestion)
  kCongestionStall,   ///< actuation step stalled on a separation clash
  kDelivered,         ///< cage at its goal with a confirmed cell
  kDeliveryFailed,    ///< episode ended with this cage undelivered
  // Cross-chamber handoff (multi-chamber orchestration):
  kTransferRequested,  ///< source cage parked at its port; handoff requested
  kTransferAdmitted,   ///< destination chamber admitted + routed the cage
  kTransferDenied,     ///< admission denied (congestion / no route); backoff
  // Runtime fault lifecycle (deterministic mid-episode injection). Injection
  // events are ground truth in the audit trail — the same contract as
  // kEscapeInjected: the CONTROLLER never reads them, tests account against
  // them exactly.
  kFaultInjected,    ///< electrode fault appended to the live defect state
  kSensorFault,      ///< transient sensor fault began (row dropout / burst)
  kPortDown,         ///< transfer port went down (cage_id = port id)
  kPortRestored,     ///< intermittent port came back up (cage_id = port id)
  kPortFailed,       ///< transfer port failed permanently (cage_id = port id)
  // Health monitoring + graceful degradation (control/health.hpp):
  kSiteQuarantined,    ///< watchdog blocked a suspect site region
  kSiteRehabilitated,  ///< quarantine probation expired; site unblocked
  kHealthDegraded,     ///< chamber entered the degraded rung of the ladder
  kHealthQuarantined,  ///< chamber quarantined (no further admissions)
  kHealthRecovered,    ///< chamber climbed one rung back (probation mode)
  // Recovery + transfer-retry discipline:
  kRecaptureFailed,    ///< recapture patience expired at the capture site
  kRescueStarted,      ///< rescue maneuver into a fully blocked neighborhood
  kTransferRerouted,   ///< transfer escalated to an alternate port
  kTransferTimedOut,   ///< transfer hit its deadline; explicit terminal failure
  // Open-system admission control (control/admission.hpp). Typed load
  // shedding: overload is always visible in the audit trail, never a silent
  // drop. `cage_id` = -1, `site` = the inlet's port site.
  kAdmissionDeferred,  ///< inlet queue head could not be admitted this tick
  kAdmissionShed,      ///< arrival dropped at a full inlet queue (watermark)
};

/// Number of event kinds (bounded per-kind counter arrays in streaming mode).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kAdmissionShed) + 1;

const char* to_string(EventKind kind);

/// One supervisory event. `site` is the cage's site when the event fired.
struct ControlEvent {
  int tick = 0;
  EventKind kind = EventKind::kCellLost;
  int cage_id = 0;
  GridCoord site;
};

std::ostream& operator<<(std::ostream& os, const ControlEvent& e);

/// Number of events of one kind (report/test helper).
std::size_t count_events(const std::vector<ControlEvent>& events, EventKind kind);

}  // namespace biochip::control
