#pragma once
/// \file engine.hpp
/// \brief The closed-loop control engine: sense → track → replan → actuate.
///
/// This is the layer the paper's architecture promises but an open-loop
/// reproduction never exercises: the same CMOS die that actuates the DEP
/// cages also *watches* them. Each supervisory tick the engine
///  1. actuates one committed route step per cage (stalling any step that a
///     deviating neighbor makes illegal, and re-timing that cage's plan);
///  2. integrates every particle for one site period — traps parked on
///     defective sites exert no force (`chip::site_usable`), and per-episode
///     fault injection may kick a trapped cell out of its basin;
///  3. synthesizes a CDS frame of the true scene (`sensor::FrameSynthesizer`
///     + `sensor::apply_pixel_faults`), detects, and feeds the occupancy
///     tracker;
///  4. lets the supervisor react: pause the tow of a cage that lost its
///     cell, spawn a recapture maneuver toward the stray detection, re-route
///     online around defective or congested sites via the replanner.
///
/// Determinism contract: all randomness (physics, frame noise, escapes)
/// derives from counter-based `Rng::fork` streams of one episode stream, so
/// a run is bitwise identical for any worker-pool size — including none.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "chip/cage.hpp"
#include "chip/defects.hpp"
#include "chip/fault_injector.hpp"
#include "common/rng.hpp"
#include "control/config.hpp"
#include "control/events.hpp"
#include "control/health.hpp"
#include "control/replanner.hpp"
#include "control/supervisor.hpp"
#include "control/tracker.hpp"
#include "core/simulation.hpp"
#include "field/incremental.hpp"
#include "physics/dynamics.hpp"
#include "sensor/frame.hpp"

namespace biochip::core {
class ThreadPool;
}
namespace biochip::obs {
class TraceRecorder;
}

namespace biochip::control {

/// One cage-to-destination delivery request.
struct CageGoal {
  int cage_id = 0;
  GridCoord destination;
};

/// Outcome of one closed-loop (or open-loop baseline) episode.
struct EpisodeReport {
  bool planned = false;  ///< router found an initial collision-free plan
  bool success = false;  ///< planned && every goal cage delivered (ground truth)
  int ticks = 0;         ///< supervisory ticks executed
  double elapsed = 0.0;  ///< physical episode time [s]
  std::size_t replans = 0;  ///< successful online re-routes
  std::size_t frames_sensed = 0;  ///< CDS frames averaged across all ticks
  std::vector<ControlEvent> events;  ///< full audit trail, chronological
  /// Ground-truth delivery accounting over the goal cages: a cage is
  /// delivered iff it sits at its destination with its cell inside the
  /// capture basin. Every goal cage lands in exactly one list.
  std::vector<int> delivered_ids;
  std::vector<int> failed_ids;
};

/// Runs closed-loop episodes against one chip (controller + engine + imager
/// + defect map). Holds no per-episode state: `run` is re-entrant over the
/// referenced chip state, which it mutates like any manipulation would.
class ClosedLoopEngine {
 public:
  ClosedLoopEngine(chip::CageController& cages, core::ManipulationEngine& engine,
                   const sensor::FrameSynthesizer& imager, const chip::DefectMap& defects,
                   double site_period, ControlConfig config);

  const ControlConfig& config() const { return config_; }

  /// Execute one episode. `bodies` is the full particle array (free cells
  /// included — they are imaged and may be recaptured); `cage_bodies` maps
  /// every tracked cage to its body index; every goal cage must be tracked.
  /// `pool` fans the per-body physics (null = serial); results are bitwise
  /// identical either way.
  EpisodeReport run(const std::vector<CageGoal>& goals,
                    std::vector<physics::ParticleBody>& bodies,
                    const std::vector<std::pair<int, int>>& cage_bodies,
                    Rng stream_base, core::ThreadPool* pool);

 private:
  friend class EpisodeRuntime;

  chip::CageController& cages_;
  core::ManipulationEngine& engine_;
  const sensor::FrameSynthesizer& imager_;
  const chip::DefectMap& defects_;
  double site_period_;
  ControlConfig config_;
};

/// The per-tick state of ONE running episode, pulled out of
/// `ClosedLoopEngine::run` so an orchestrator can interleave supervisory
/// ticks of many chambers with arbitration between them. Construction plans
/// the initial routes and builds the control stack (replanner / tracker /
/// supervisor); `tick(t)` executes one supervisory tick; `finish()` does the
/// ground-truth delivery accounting. `ClosedLoopEngine::run` is exactly
/// construct → tick until done → finish, so single-chamber behavior is the
/// steppable path, not a parallel implementation.
///
/// The hand-off hooks (`release_cage` / `admit_cage`) are what make
/// cross-chamber transfers possible: a cage (and its cell body) can leave a
/// running episode and join another one mid-flight, with the destination
/// episode routing it through its own reservation table.
class EpisodeRuntime {
 public:
  /// Plans and builds the control stack. `pool` fans the per-body physics
  /// (null = serial; must be null when the runtime itself is ticked from a
  /// worker thread — nested parallel_for on one pool deadlocks).
  EpisodeRuntime(ClosedLoopEngine& owner, std::vector<CageGoal> goals,
                 std::vector<physics::ParticleBody>& bodies,
                 std::vector<std::pair<int, int>> cage_bodies, Rng stream_base,
                 core::ThreadPool* pool);

  /// False when the initial multi-cage plan failed; the report is already
  /// final (every goal cage failed, with explicit events).
  bool planned() const { return planned_; }
  /// Tick budget of the single-chamber driver (orchestrators set their own).
  int budget() const { return budget_; }

  /// One supervisory tick at absolute tick t (1-based, strictly increasing).
  void tick(int t);

  /// Elided tick of a finished chamber (orchestrator idle-chamber elision):
  /// no actuation, physics, sensing or supervision — the chamber's world is
  /// frozen — but the health monitor still consumes any audit events that
  /// fault hooks recorded since the last observation, so ladder decisions
  /// fire on the same tick as in a non-elided run.
  void idle_tick(int t);

  /// Closed loop: every supervised cage delivered. Open loop: never true
  /// (the committed plan just runs out).
  bool all_delivered() const;
  /// Last tick at which any committed path still moves (open-loop horizon,
  /// grows as hand-offs admit new cages; 0 when the initial plan failed).
  int horizon() const { return replanner_.has_value() ? replanner_->horizon() : 0; }

  /// Ground-truth delivery accounting over the current goal set; call once,
  /// after the last tick. Returns the finished report.
  EpisodeReport finish();

  // ---- orchestration hooks (cross-chamber transfers) ----------------------

  const ControlConfig& config() const { return owner_.config_; }
  /// Supervision mode of a goal cage (throws when not supervised or when
  /// the initial plan failed — no control stack exists then).
  CageMode mode(int cage_id) const;
  bool supervises(int cage_id) const {
    return supervisor_.has_value() && supervisor_->supervises(cage_id);
  }
  GridCoord site(int cage_id) const { return owner_.cages_.site(cage_id); }
  /// True when the defect map leaves this site usable as a cage position.
  bool site_ok(GridCoord site) const;
  /// Trap center of a site in this chamber's coordinates.
  Vec3 trap_center(GridCoord site) const;
  /// Append an externally generated event (e.g. transfer arbitration) to
  /// this chamber's audit trail.
  void record_event(const ControlEvent& event) { report_.events.push_back(event); }

  // ---- streaming-service hooks (open-system mode) --------------------------

  /// Drain the audit events the health watchdog has already observed (all of
  /// them when health is disabled). Streaming drivers fold the drained
  /// events into bounded aggregate counters each tick, so an indefinite run
  /// never accumulates an unbounded audit trail; events recorded after the
  /// last health observation stay queued for the next observation. `all`
  /// overrides the watchdog cursor (final drain after the last tick, when no
  /// further observation will run).
  std::vector<ControlEvent> take_observed_events(bool all = false);

  /// CDS frames averaged so far (streaming reports fold this per chamber).
  std::size_t frames_sensed() const { return report_.frames_sensed; }
  /// Successful online re-routes so far (obs gauge fold).
  std::size_t replans() const {
    return replanner_.has_value() ? replanner_->replans() : 0;
  }

  /// Attach the timing plane: `tick()` then records actuate / physics /
  /// sense / track / plan phase spans into `trace` on lane `lane`
  /// (docs/observability.md). Null (the default) reads no clock at all.
  /// Spans are wall-clock and nondeterministic by design; they never feed
  /// back into simulation state, so attaching a recorder cannot perturb the
  /// bitwise identity contract.
  void set_trace(obs::TraceRecorder* trace, int lane) {
    trace_ = trace;
    trace_lane_ = lane;
  }
  /// Live delivery goals (streaming harvest: poll `mode()` per goal).
  const std::vector<CageGoal>& goals() const { return goals_; }
  std::size_t active_goal_count() const { return goals_.size(); }
  /// Size of the body array — the resident-memory metric the slot-recycling
  /// regression gates on (bounded under `ControlConfig::recycle_slots`).
  std::size_t resident_bodies() const { return bodies_.size(); }
  /// Compact committed-path history older than tick t-1 (see
  /// `Replanner::compact`). No-op when the initial plan failed.
  void compact_paths(int t) {
    if (replanner_.has_value()) replanner_->compact(t);
  }

  /// Copy of the cell body a goal cage tows (hand-off staging: the
  /// orchestrator repositions the copy into the destination chamber's frame
  /// before offering it to `admit_cage`).
  physics::ParticleBody body_of(int cage_id) const;

  /// Admission test + commit for a cage handed into this chamber at `at`
  /// with delivery goal `goal`, effective from tick `t` (the cage
  /// materializes at `at` after tick t's actuation). Denies (nullopt,
  /// nothing mutated) when the port neighborhood is occupied or reserved, or
  /// when no conflict-free route to `goal` exists right now. On success the
  /// cage is created, its path committed, its track registered, the goal
  /// supervised, and `cell` joins the body array; returns the new cage id.
  std::optional<int> admit_cage(GridCoord at, GridCoord goal, int t,
                                const physics::ParticleBody& cell);

  /// Remove a goal cage from this episode (handed off to another chamber):
  /// destroys the cage, drops its path/track/supervision/goal, deactivates
  /// its body (the cell left the chamber), and returns the body.
  physics::ParticleBody release_cage(int cage_id);

  /// Drop a cage's delivery goal from this episode's accounting without
  /// touching the cage (a transfer that failed permanently is accounted at
  /// the orchestrator level instead).
  void drop_goal(int cage_id);

  /// Give a previously goal-less cage a delivery goal mid-episode (staged
  /// transfer legs waiting for a shared port to free). The cage must be
  /// tracked and hold a committed (parked) path — every cage the episode was
  /// constructed with does. The parked-retry branch routes it next tick.
  void assign_goal(int cage_id, GridCoord goal);

  /// Re-assign a supervised cage's delivery goal (transfer escalated to an
  /// alternate port). Episode accounting follows the new goal.
  void retarget(int cage_id, GridCoord goal);

  // ---- runtime fault lifecycle (chip::FaultInjector integration) ----------

  /// Apply one electrode fault to the live chamber at tick t and record it
  /// as `kFaultInjected`. Announced kinds (`kElectrodeDead`,
  /// `kElectrodeStuckCage`) enter both the truth and the belief defect maps
  /// — the chip's self-test caught them, so routing, admission and pixel
  /// masking react immediately. `kElectrodeSilentDead` enters ground truth
  /// only: the trap stops holding, but the controller must *discover* it
  /// (via the health monitor's loss strikes).
  void apply_electrode_fault(int t, GridCoord site, chip::FaultKind kind);

  /// Transient sensor faults, ground truth only (the controller never knows;
  /// tracker hysteresis and the health ladder absorb the symptoms). A row
  /// dropout zeroes one pixel row for `duration` ticks; a burst writes
  /// phantom ΔC over a `tile`×`tile` region for `duration` ticks. Both
  /// record a `kSensorFault` event.
  void begin_sensor_dropout(int t, int row, int duration);
  void begin_sensor_burst(int t, GridCoord origin, int tile, int duration);

  // ---- tracked whole-chamber field (optional; config-gated) ---------------

  /// Non-null when `ControlConfig::field_tracking_nodes_per_pitch > 0` and
  /// the initial plan succeeded: the live Laplace potential the tick path
  /// maintains incrementally (dirty windows around electrodes whose drive
  /// changed, periodic full re-anchor). Exposes the grid for identity tests
  /// and the cumulative `field::SolveAccounting` for the obs fold.
  const field::IncrementalPotential* field_tracker() const {
    return field_tracker_.has_value() ? &*field_tracker_ : nullptr;
  }

  // ---- health (watchdog) queries ------------------------------------------

  /// Current rung of the degradation ladder (kNormal when disabled).
  HealthState health_state() const {
    return health_.has_value() ? health_->state() : HealthState::kNormal;
  }
  /// Growth of the belief blocked mask over episode start, as a fraction of
  /// the initially usable sites (the health ladder's input).
  double excess_blocked_fraction() const;
  /// Ground-truth defect map (announced + silent faults) — carried across
  /// service episodes by soak drivers (the next self-test announces it all).
  const chip::DefectMap& truth_defects() const { return truth_defects_; }

 private:
  bool body_index_of(int cage_id, std::size_t& out) const;
  void integrate_range(int t, std::size_t nb, std::size_t ne);
  /// True while every supervised cage is confirmed occupied on its nominal
  /// leg — the steady-state sense slow-down predicate.
  bool steady_state() const;
  /// Recompute belief + truth blocked masks from the (mutated) defect maps
  /// and the quarantine mask, and push the belief mask into the replanner.
  void refresh_blocked();
  /// True when ground truth leaves the site's trap functional.
  bool truth_site_ok(GridCoord site) const;
  /// Health observation over the audit events recorded since the last scan.
  void observe_health(int t);
  /// Push this tick's actuation pattern into the tracked field: +drive on
  /// every ground-truth-functional trap site, 0 elsewhere. O(changed
  /// electrodes) windowed solves; a tick whose pattern repeats is a no-op.
  void update_tracked_field(const std::vector<GridCoord>& sites);

  ClosedLoopEngine& owner_;
  core::ThreadPool* pool_;
  std::vector<CageGoal> goals_;
  std::vector<physics::ParticleBody>& bodies_;
  std::vector<std::pair<int, int>> cage_bodies_;
  /// Stable fault-stream slot per `cage_bodies_` entry (kept in sync).
  /// `cage_bodies_` shrinks on hand-off, so indexing fault forks by vector
  /// position would reuse stream ids across ticks; slots are assigned from
  /// a monotone counter and never recycled, keeping (slot, tick) unique.
  std::vector<std::uint64_t> fault_slots_;
  std::uint64_t next_fault_slot_ = 0;
  /// Aligned with `bodies_`; 0 = the cell left this chamber (not integrated,
  /// not imaged). Without `ControlConfig::recycle_slots` bodies are never
  /// erased, so physics fork-stream ids (keyed by slot index) stay monotone
  /// and collision-free. With recycling on, released slots are reused and
  /// the physics stream is keyed by `body_streams_` instead — a persistent
  /// per-admission counter that never repeats across reuse.
  std::vector<std::uint8_t> body_active_;
  std::vector<std::uint64_t> body_streams_;  ///< per-slot physics stream id
  std::uint64_t next_body_stream_ = 0;       ///< monotone admission counter
  std::vector<std::size_t> free_body_slots_;  ///< released slots (recycling on)

  bool planned_ = false;
  int budget_ = 0;
  double capture_ = 0.0;
  /// Belief (controller) defect state: the self-test map plus every
  /// *announced* runtime fault. Drives routing, admission, pixel masking and
  /// the supervisor's credibility checks.
  chip::DefectMap defects_;
  /// Ground truth: belief plus silent faults. Drives the physics only.
  chip::DefectMap truth_defects_;
  std::vector<std::uint8_t> blocked_;        ///< belief mask (incl. quarantines)
  std::vector<std::uint8_t> truth_blocked_;  ///< ground-truth mask
  std::vector<std::uint8_t> quarantine_mask_;  ///< watchdog-blocked sites
  std::size_t initial_blocked_ = 0;  ///< belief blocked count at episode start
  std::size_t substeps_ = 0;
  double threshold_ = 0.0;
  double cds_base_sigma_ = 0.0;  ///< single-frame CDS noise σ (threshold recompute)
  Aabb bounds_;

  /// Active transient sensor overlays (pruned when expired — bounded memory
  /// under indefinite soak).
  struct SensorDropout {
    int until = 0;  ///< first tick the fault no longer applies
    int row = 0;
  };
  struct SensorBurst {
    int until = 0;
    GridCoord origin;
    int tile = 0;
  };
  std::vector<SensorDropout> dropouts_;
  std::vector<SensorBurst> bursts_;

  std::optional<HealthMonitor> health_;
  std::size_t health_scan_pos_ = 0;  ///< audit-event cursor of the watchdog
  int last_admit_tick_ = -1;         ///< degraded-mode admission throttle

  Rng phys_base_;
  Rng sense_base_;
  Rng fault_base_;

  std::optional<Replanner> replanner_;
  std::optional<OccupancyTracker> tracker_;
  std::optional<Supervisor> supervisor_;

  /// Tracked whole-chamber field (engaged when
  /// `ControlConfig::field_tracking_nodes_per_pitch > 0`) + the per-electrode
  /// drive scratch the tick path rewrites in place.
  std::optional<field::IncrementalPotential> field_tracker_;
  std::vector<double> field_drive_;

  std::vector<int> stalled_;
  EpisodeReport report_;

  obs::TraceRecorder* trace_ = nullptr;  ///< timing plane (null = no clock)
  int trace_lane_ = -1;
};

}  // namespace biochip::control
