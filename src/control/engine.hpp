#pragma once
/// \file engine.hpp
/// \brief The closed-loop control engine: sense → track → replan → actuate.
///
/// This is the layer the paper's architecture promises but an open-loop
/// reproduction never exercises: the same CMOS die that actuates the DEP
/// cages also *watches* them. Each supervisory tick the engine
///  1. actuates one committed route step per cage (stalling any step that a
///     deviating neighbor makes illegal, and re-timing that cage's plan);
///  2. integrates every particle for one site period — traps parked on
///     defective sites exert no force (`chip::site_usable`), and per-episode
///     fault injection may kick a trapped cell out of its basin;
///  3. synthesizes a CDS frame of the true scene (`sensor::FrameSynthesizer`
///     + `sensor::apply_pixel_faults`), detects, and feeds the occupancy
///     tracker;
///  4. lets the supervisor react: pause the tow of a cage that lost its
///     cell, spawn a recapture maneuver toward the stray detection, re-route
///     online around defective or congested sites via the replanner.
///
/// Determinism contract: all randomness (physics, frame noise, escapes)
/// derives from counter-based `Rng::fork` streams of one episode stream, so
/// a run is bitwise identical for any worker-pool size — including none.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "chip/cage.hpp"
#include "chip/defects.hpp"
#include "common/rng.hpp"
#include "control/config.hpp"
#include "control/events.hpp"
#include "control/replanner.hpp"
#include "control/supervisor.hpp"
#include "control/tracker.hpp"
#include "core/simulation.hpp"
#include "physics/dynamics.hpp"
#include "sensor/frame.hpp"

namespace biochip::core {
class ThreadPool;
}

namespace biochip::control {

/// One cage-to-destination delivery request.
struct CageGoal {
  int cage_id = 0;
  GridCoord destination;
};

/// Outcome of one closed-loop (or open-loop baseline) episode.
struct EpisodeReport {
  bool planned = false;  ///< router found an initial collision-free plan
  bool success = false;  ///< planned && every goal cage delivered (ground truth)
  int ticks = 0;         ///< supervisory ticks executed
  double elapsed = 0.0;  ///< physical episode time [s]
  std::size_t replans = 0;  ///< successful online re-routes
  std::vector<ControlEvent> events;  ///< full audit trail, chronological
  /// Ground-truth delivery accounting over the goal cages: a cage is
  /// delivered iff it sits at its destination with its cell inside the
  /// capture basin. Every goal cage lands in exactly one list.
  std::vector<int> delivered_ids;
  std::vector<int> failed_ids;
};

/// Runs closed-loop episodes against one chip (controller + engine + imager
/// + defect map). Holds no per-episode state: `run` is re-entrant over the
/// referenced chip state, which it mutates like any manipulation would.
class ClosedLoopEngine {
 public:
  ClosedLoopEngine(chip::CageController& cages, core::ManipulationEngine& engine,
                   const sensor::FrameSynthesizer& imager, const chip::DefectMap& defects,
                   double site_period, ControlConfig config);

  const ControlConfig& config() const { return config_; }

  /// Execute one episode. `bodies` is the full particle array (free cells
  /// included — they are imaged and may be recaptured); `cage_bodies` maps
  /// every tracked cage to its body index; every goal cage must be tracked.
  /// `pool` fans the per-body physics (null = serial); results are bitwise
  /// identical either way.
  EpisodeReport run(const std::vector<CageGoal>& goals,
                    std::vector<physics::ParticleBody>& bodies,
                    const std::vector<std::pair<int, int>>& cage_bodies,
                    Rng stream_base, core::ThreadPool* pool);

 private:
  friend class EpisodeRuntime;

  chip::CageController& cages_;
  core::ManipulationEngine& engine_;
  const sensor::FrameSynthesizer& imager_;
  const chip::DefectMap& defects_;
  double site_period_;
  ControlConfig config_;
};

/// The per-tick state of ONE running episode, pulled out of
/// `ClosedLoopEngine::run` so an orchestrator can interleave supervisory
/// ticks of many chambers with arbitration between them. Construction plans
/// the initial routes and builds the control stack (replanner / tracker /
/// supervisor); `tick(t)` executes one supervisory tick; `finish()` does the
/// ground-truth delivery accounting. `ClosedLoopEngine::run` is exactly
/// construct → tick until done → finish, so single-chamber behavior is the
/// steppable path, not a parallel implementation.
///
/// The hand-off hooks (`release_cage` / `admit_cage`) are what make
/// cross-chamber transfers possible: a cage (and its cell body) can leave a
/// running episode and join another one mid-flight, with the destination
/// episode routing it through its own reservation table.
class EpisodeRuntime {
 public:
  /// Plans and builds the control stack. `pool` fans the per-body physics
  /// (null = serial; must be null when the runtime itself is ticked from a
  /// worker thread — nested parallel_for on one pool deadlocks).
  EpisodeRuntime(ClosedLoopEngine& owner, std::vector<CageGoal> goals,
                 std::vector<physics::ParticleBody>& bodies,
                 std::vector<std::pair<int, int>> cage_bodies, Rng stream_base,
                 core::ThreadPool* pool);

  /// False when the initial multi-cage plan failed; the report is already
  /// final (every goal cage failed, with explicit events).
  bool planned() const { return planned_; }
  /// Tick budget of the single-chamber driver (orchestrators set their own).
  int budget() const { return budget_; }

  /// One supervisory tick at absolute tick t (1-based, strictly increasing).
  void tick(int t);

  /// Closed loop: every supervised cage delivered. Open loop: never true
  /// (the committed plan just runs out).
  bool all_delivered() const;
  /// Last tick at which any committed path still moves (open-loop horizon,
  /// grows as hand-offs admit new cages; 0 when the initial plan failed).
  int horizon() const { return replanner_.has_value() ? replanner_->horizon() : 0; }

  /// Ground-truth delivery accounting over the current goal set; call once,
  /// after the last tick. Returns the finished report.
  EpisodeReport finish();

  // ---- orchestration hooks (cross-chamber transfers) ----------------------

  const ControlConfig& config() const { return owner_.config_; }
  /// Supervision mode of a goal cage (throws when not supervised or when
  /// the initial plan failed — no control stack exists then).
  CageMode mode(int cage_id) const;
  bool supervises(int cage_id) const {
    return supervisor_.has_value() && supervisor_->supervises(cage_id);
  }
  GridCoord site(int cage_id) const { return owner_.cages_.site(cage_id); }
  /// True when the defect map leaves this site usable as a cage position.
  bool site_ok(GridCoord site) const;
  /// Trap center of a site in this chamber's coordinates.
  Vec3 trap_center(GridCoord site) const;
  /// Append an externally generated event (e.g. transfer arbitration) to
  /// this chamber's audit trail.
  void record_event(const ControlEvent& event) { report_.events.push_back(event); }

  /// Copy of the cell body a goal cage tows (hand-off staging: the
  /// orchestrator repositions the copy into the destination chamber's frame
  /// before offering it to `admit_cage`).
  physics::ParticleBody body_of(int cage_id) const;

  /// Admission test + commit for a cage handed into this chamber at `at`
  /// with delivery goal `goal`, effective from tick `t` (the cage
  /// materializes at `at` after tick t's actuation). Denies (nullopt,
  /// nothing mutated) when the port neighborhood is occupied or reserved, or
  /// when no conflict-free route to `goal` exists right now. On success the
  /// cage is created, its path committed, its track registered, the goal
  /// supervised, and `cell` joins the body array; returns the new cage id.
  std::optional<int> admit_cage(GridCoord at, GridCoord goal, int t,
                                const physics::ParticleBody& cell);

  /// Remove a goal cage from this episode (handed off to another chamber):
  /// destroys the cage, drops its path/track/supervision/goal, deactivates
  /// its body (the cell left the chamber), and returns the body.
  physics::ParticleBody release_cage(int cage_id);

  /// Drop a cage's delivery goal from this episode's accounting without
  /// touching the cage (a transfer that failed permanently is accounted at
  /// the orchestrator level instead).
  void drop_goal(int cage_id);

 private:
  bool body_index_of(int cage_id, std::size_t& out) const;
  void integrate_range(int t, std::size_t nb, std::size_t ne);

  ClosedLoopEngine& owner_;
  core::ThreadPool* pool_;
  std::vector<CageGoal> goals_;
  std::vector<physics::ParticleBody>& bodies_;
  std::vector<std::pair<int, int>> cage_bodies_;
  /// Stable fault-stream slot per `cage_bodies_` entry (kept in sync).
  /// `cage_bodies_` shrinks on hand-off, so indexing fault forks by vector
  /// position would reuse stream ids across ticks; slots are assigned from
  /// a monotone counter and never recycled, keeping (slot, tick) unique.
  std::vector<std::uint64_t> fault_slots_;
  std::uint64_t next_fault_slot_ = 0;
  /// Aligned with `bodies_`; 0 = the cell left this chamber (not integrated,
  /// not imaged). Bodies are never erased, so physics fork-stream ids stay
  /// monotone and collision-free.
  std::vector<std::uint8_t> body_active_;

  bool planned_ = false;
  int budget_ = 0;
  double capture_ = 0.0;
  std::vector<std::uint8_t> blocked_;
  std::size_t substeps_ = 0;
  double threshold_ = 0.0;
  Aabb bounds_;

  Rng phys_base_;
  Rng sense_base_;
  Rng fault_base_;

  std::optional<Replanner> replanner_;
  std::optional<OccupancyTracker> tracker_;
  std::optional<Supervisor> supervisor_;

  std::vector<int> stalled_;
  EpisodeReport report_;
};

}  // namespace biochip::control
