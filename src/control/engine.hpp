#pragma once
/// \file engine.hpp
/// \brief The closed-loop control engine: sense → track → replan → actuate.
///
/// This is the layer the paper's architecture promises but an open-loop
/// reproduction never exercises: the same CMOS die that actuates the DEP
/// cages also *watches* them. Each supervisory tick the engine
///  1. actuates one committed route step per cage (stalling any step that a
///     deviating neighbor makes illegal, and re-timing that cage's plan);
///  2. integrates every particle for one site period — traps parked on
///     defective sites exert no force (`chip::site_usable`), and per-episode
///     fault injection may kick a trapped cell out of its basin;
///  3. synthesizes a CDS frame of the true scene (`sensor::FrameSynthesizer`
///     + `sensor::apply_pixel_faults`), detects, and feeds the occupancy
///     tracker;
///  4. lets the supervisor react: pause the tow of a cage that lost its
///     cell, spawn a recapture maneuver toward the stray detection, re-route
///     online around defective or congested sites via the replanner.
///
/// Determinism contract: all randomness (physics, frame noise, escapes)
/// derives from counter-based `Rng::fork` streams of one episode stream, so
/// a run is bitwise identical for any worker-pool size — including none.

#include <utility>
#include <vector>

#include "chip/cage.hpp"
#include "chip/defects.hpp"
#include "common/rng.hpp"
#include "control/config.hpp"
#include "control/events.hpp"
#include "core/simulation.hpp"
#include "physics/dynamics.hpp"
#include "sensor/frame.hpp"

namespace biochip::core {
class ThreadPool;
}

namespace biochip::control {

/// One cage-to-destination delivery request.
struct CageGoal {
  int cage_id = 0;
  GridCoord destination;
};

/// Outcome of one closed-loop (or open-loop baseline) episode.
struct EpisodeReport {
  bool planned = false;  ///< router found an initial collision-free plan
  bool success = false;  ///< planned && every goal cage delivered (ground truth)
  int ticks = 0;         ///< supervisory ticks executed
  double elapsed = 0.0;  ///< physical episode time [s]
  std::size_t replans = 0;  ///< successful online re-routes
  std::vector<ControlEvent> events;  ///< full audit trail, chronological
  /// Ground-truth delivery accounting over the goal cages: a cage is
  /// delivered iff it sits at its destination with its cell inside the
  /// capture basin. Every goal cage lands in exactly one list.
  std::vector<int> delivered_ids;
  std::vector<int> failed_ids;
};

/// Runs closed-loop episodes against one chip (controller + engine + imager
/// + defect map). Holds no per-episode state: `run` is re-entrant over the
/// referenced chip state, which it mutates like any manipulation would.
class ClosedLoopEngine {
 public:
  ClosedLoopEngine(chip::CageController& cages, core::ManipulationEngine& engine,
                   const sensor::FrameSynthesizer& imager, const chip::DefectMap& defects,
                   double site_period, ControlConfig config);

  const ControlConfig& config() const { return config_; }

  /// Execute one episode. `bodies` is the full particle array (free cells
  /// included — they are imaged and may be recaptured); `cage_bodies` maps
  /// every tracked cage to its body index; every goal cage must be tracked.
  /// `pool` fans the per-body physics (null = serial); results are bitwise
  /// identical either way.
  EpisodeReport run(const std::vector<CageGoal>& goals,
                    std::vector<physics::ParticleBody>& bodies,
                    const std::vector<std::pair<int, int>>& cage_bodies,
                    Rng stream_base, core::ThreadPool* pool);

 private:
  chip::CageController& cages_;
  core::ManipulationEngine& engine_;
  const sensor::FrameSynthesizer& imager_;
  const chip::DefectMap& defects_;
  double site_period_;
  ControlConfig config_;
};

}  // namespace biochip::control
