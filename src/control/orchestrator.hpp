#pragma once
/// \file orchestrator.hpp
/// \brief Multi-chamber orchestration: per-chamber supervisors + shared
/// transfer arbitration.
///
/// The paper's chip is a multi-site lab-on-chip: several microchambers share
/// the die and cells move between them through microfluidic channels. The
/// orchestrator scales the closed loop to that shape: one full control stack
/// (`Supervisor` + `OccupancyTracker` + `Replanner`, held by an
/// `EpisodeRuntime`) runs **per fluidic chamber**, chambers tick
/// concurrently on the worker pool, and a serial arbitration pass between
/// ticks turns cross-chamber transfers into typed route *requests* between
/// supervisors:
///
///   1. the source chamber's supervisor tows the cage to its transfer-port
///      site like any other delivery;
///   2. arrival raises a `TransferRequest` (`EventKind::kTransferRequested`);
///   3. the destination chamber decides admission: the port neighborhood
///      must be defect-usable, physically clear, unreserved, and
///      `cad::route_astar_reserved` must find a conflict-free route to the
///      final goal through the destination's OWN reservation table —
///      otherwise the request is denied (`kTransferDenied`) and retried
///      after a backoff, or failed permanently when the port is
///      defect-blocked;
///   4. on admission (`kTransferAdmitted`) the cage + cell leave the source
///      episode (`EpisodeRuntime::release_cage`) and join the destination
///      (`admit_cage`), which supervises the final delivery leg.
///
/// Determinism contract: chamber c draws every stream from
/// `stream_base.fork(c)` — disjoint per-chamber stream spaces — chamber
/// ticks are barrier-synchronized, and arbitration runs serially in
/// ascending transfer order, so a multi-chamber episode is **bitwise
/// identical** for any worker count and chunking (pass `max_parts = 1` for
/// the serial reference).

#include <cstdint>
#include <utility>
#include <vector>

#include "chip/defects.hpp"
#include "chip/fault_injector.hpp"
#include "common/rng.hpp"
#include "control/config.hpp"
#include "control/engine.hpp"
#include "control/health.hpp"
#include "fluidic/chamber_network.hpp"

namespace biochip::core {
class ThreadPool;
}
namespace biochip::obs {
class Observer;
}

namespace biochip::control {

/// One chamber's chip world, owned by the caller. Chambers must not share
/// mutable state (each has its own controller / engine / defect map / body
/// array) — the same isolation rule as `ClosedLoopTransporter::Episode`.
struct ChamberSetup {
  chip::CageController* cages = nullptr;
  core::ManipulationEngine* engine = nullptr;
  const sensor::FrameSynthesizer* imager = nullptr;
  const chip::DefectMap* defects = nullptr;
  std::vector<physics::ParticleBody>* bodies = nullptr;
  std::vector<std::pair<int, int>> cage_bodies;  ///< cage id → body index
  std::vector<CageGoal> goals;                   ///< intra-chamber deliveries
};

/// One cross-chamber delivery: the cage starts in `from_chamber` and must
/// end at `destination` in `to_chamber`, handed through the network port
/// connecting the two.
struct TransferGoal {
  int from_chamber = 0;
  int cage_id = 0;  ///< id in the source chamber's controller
  int to_chamber = 0;
  GridCoord destination;  ///< final site in the destination chamber
};

/// Lifecycle of one transfer.
enum class TransferPhase : std::uint8_t {
  kQueued,             ///< staged: an earlier transfer holds the same source port
  kTowingToPort,       ///< source supervisor tows the cage to its port site
  kAwaitingAdmission,  ///< at the port; destination has not admitted yet
  kInDestination,      ///< admitted; destination supervises the final leg
  kDelivered,          ///< ground-truth delivered at the final goal
  kFailed,             ///< explicit failure (blocked port, deadline, lost cell)
};

const char* to_string(TransferPhase phase);

/// Per-transfer outcome (indexed like the input `TransferGoal` list).
struct TransferOutcome {
  TransferPhase phase = TransferPhase::kTowingToPort;
  int dest_cage_id = -1;  ///< cage id in the destination chamber (once admitted)
  int requests = 0;       ///< admission attempts (first + backoff retries)
  int denials = 0;        ///< denied attempts
  int handoff_tick = -1;  ///< tick of the admission, -1 = never admitted
  int port_id = -1;       ///< network port the transfer last used
  int reroutes = 0;       ///< escalations to an alternate port
  bool timed_out = false; ///< failed on its admission deadline
};

struct OrchestratorConfig {
  /// Per-chamber control config (`closed_loop = false` = open-loop baseline:
  /// blind plans, blind hand-offs at the port, no recovery).
  ControlConfig control;
  double site_period = 0.4;  ///< [s] per supervisory tick
  /// Base ticks between admission retries after a denial. Consecutive
  /// denials double the wait (capped below) — a congested or degraded
  /// destination is not hammered every backoff period.
  int transfer_backoff = 4;
  /// Cap of the exponential admission backoff [ticks].
  int max_transfer_backoff = 32;
  /// Consecutive denials at one port before a transfer escalates to an
  /// alternate port of the same chamber pair (closed loop; 0 = never).
  int escalate_after_denials = 3;
  /// Admission deadline: ticks a transfer may sit at a port awaiting
  /// admission before it fails explicitly (`kTransferTimedOut`). The timer
  /// restarts when an escalation re-tows to another port. 0 = no deadline.
  int transfer_deadline = 0;
  /// Global tick budget; 0 = auto (chamber budgets + per-transfer slack).
  int max_ticks = 0;
  /// Deterministic runtime fault schedule (scripted + Poisson arrivals),
  /// applied serially before each tick's chamber fan-out. Empty = none.
  chip::FaultScheduleConfig faults;
  /// Ports already failed permanently at episode start (soak carry-over).
  std::vector<int> failed_ports;
  /// Skip the full sense/track/supervise tick of chambers that are finished
  /// (all goals delivered) and referenced by no active transfer. The elided
  /// chamber's world freezes; health observation still runs every tick, so
  /// ladder decisions are tick-exact (see docs/robustness.md for the exact
  /// equivalence contract).
  bool elide_idle_chambers = false;
};

struct OrchestratorReport {
  bool planned = false;  ///< every chamber's initial plan succeeded
  int ticks = 0;         ///< global supervisory ticks executed
  std::size_t transfer_requests = 0;  ///< transfers that reached their port
  std::size_t admissions = 0;
  std::size_t denials = 0;
  std::size_t reroutes = 0;  ///< port escalations across all transfers
  std::size_t timeouts = 0;  ///< transfers failed on their deadline
  /// Per-chamber episode reports (intra-chamber accounting; transfer legs
  /// are accounted globally below, not double-counted here).
  std::vector<EpisodeReport> chambers;
  std::vector<TransferOutcome> transfers;  ///< one per TransferGoal, in order
  std::vector<std::size_t> delivered_transfers;  ///< indices into `transfers`
  std::vector<std::size_t> failed_transfers;     ///< every transfer lands in one
  /// Exact injection schedule this episode executed (ground truth for the
  /// injected-vs-observed accounting in tests).
  std::vector<chip::FaultEvent> injected_faults;
  std::vector<int> failed_ports;  ///< permanently failed ports at episode end
  /// Per-chamber final state for soak carry-over: the ground-truth defect
  /// map (the next service's self-test announces it) and the health rung.
  std::vector<chip::DefectMap> final_truth_defects;
  std::vector<HealthState> health;
  std::size_t elided_chamber_ticks = 0;  ///< chamber-ticks skipped by elision
};

/// Drives one multi-chamber episode over a `fluidic::ChamberNetwork`.
class Orchestrator {
 public:
  Orchestrator(const fluidic::ChamberNetwork& network, OrchestratorConfig config);

  const OrchestratorConfig& config() const { return config_; }
  const fluidic::ChamberNetwork& network() const { return network_; }

  /// Run one orchestrated episode: `chambers[c]` is the world of network
  /// chamber c (site grids must match the topology), `transfers` the
  /// cross-chamber goals. Chamber ticks fan out over `pool` (null = serial)
  /// in at most `max_parts` chunks (1 = serial reference); results are
  /// bitwise identical for any choice.
  OrchestratorReport run(std::vector<ChamberSetup>& chambers,
                         const std::vector<TransferGoal>& transfers, Rng stream_base,
                         core::ThreadPool* pool, std::size_t max_parts = 0);

  /// Attach a telemetry observer for subsequent `run` calls (null = off).
  /// Counting-plane folds run in the serial arbitration sections only, so
  /// telemetry cannot perturb the report or the bitwise identity contract.
  void set_observer(obs::Observer* obs) { obs_ = obs; }

 private:
  const fluidic::ChamberNetwork& network_;
  OrchestratorConfig config_;
  obs::Observer* obs_ = nullptr;
};

}  // namespace biochip::control
