#include "control/tracker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::control {

const char* to_string(TrackState state) {
  switch (state) {
    case TrackState::kEmpty: return "empty";
    case TrackState::kOccupied: return "occupied";
    case TrackState::kLost: return "lost";
  }
  return "unknown";
}

OccupancyTracker::OccupancyTracker(TrackerConfig config, double gate_radius)
    : config_(config), gate_radius_(gate_radius) {
  BIOCHIP_REQUIRE(config.lost_after_misses >= 1 && config.occupied_after_hits >= 1,
                  "hysteresis thresholds must be >= 1");
  BIOCHIP_REQUIRE(gate_radius > 0.0, "association gate must be positive");
}

void OccupancyTracker::add_track(int cage_id, TrackState initial) {
  const auto it = std::lower_bound(
      tracks_.begin(), tracks_.end(), cage_id,
      [](const Track& t, int id) { return t.cage_id < id; });
  BIOCHIP_REQUIRE(it == tracks_.end() || it->cage_id != cage_id,
                  "track already registered for this cage");
  Track t;
  t.cage_id = cage_id;
  t.state = initial;
  tracks_.insert(it, t);
}

void OccupancyTracker::remove_track(int cage_id) {
  track(cage_id);  // validates
  tracks_.erase(std::remove_if(tracks_.begin(), tracks_.end(),
                               [&](const Track& t) { return t.cage_id == cage_id; }),
                tracks_.end());
}

OccupancyTracker::Track& OccupancyTracker::track(int cage_id) {
  for (Track& t : tracks_)
    if (t.cage_id == cage_id) return t;
  throw PreconditionError("no track for cage " + std::to_string(cage_id));
}

const OccupancyTracker::Track& OccupancyTracker::track(int cage_id) const {
  return const_cast<OccupancyTracker*>(this)->track(cage_id);
}

TrackState OccupancyTracker::state(int cage_id) const { return track(cage_id).state; }

bool OccupancyTracker::has_fix(int cage_id) const { return track(cage_id).has_fix; }

Vec2 OccupancyTracker::last_fix(int cage_id) const {
  const Track& t = track(cage_id);
  BIOCHIP_REQUIRE(t.has_fix, "track has never matched a detection");
  return t.fix;
}

std::vector<int> OccupancyTracker::cage_ids() const {
  std::vector<int> ids;
  ids.reserve(tracks_.size());
  for (const Track& t : tracks_) ids.push_back(t.cage_id);
  return ids;
}

TrackUpdate OccupancyTracker::update(const std::vector<int>& cage_ids,
                                     const std::vector<Vec2>& expected,
                                     const std::vector<sensor::Detection>& detections) {
  BIOCHIP_REQUIRE(cage_ids.size() == expected.size(),
                  "one expected position per cage id");
  BIOCHIP_REQUIRE(cage_ids.size() == tracks_.size(),
                  "update must cover every registered track");
  const std::vector<int> assignment =
      sensor::associate_detections(expected, detections, gate_radius_);

  TrackUpdate out;
  std::vector<std::uint8_t> det_used(detections.size(), 0);
  for (std::size_t n = 0; n < cage_ids.size(); ++n) {
    Track& t = track(cage_ids[n]);
    if (assignment[n] >= 0) {
      det_used[static_cast<std::size_t>(assignment[n])] = 1;
      t.misses = 0;
      ++t.hits;
      t.has_fix = true;
      t.fix = detections[static_cast<std::size_t>(assignment[n])].position;
      if (t.state != TrackState::kOccupied && t.hits >= config_.occupied_after_hits) {
        t.state = TrackState::kOccupied;
        out.changes.push_back({t.cage_id, t.state});
      }
    } else {
      t.hits = 0;
      ++t.misses;
      if (t.state == TrackState::kOccupied && t.misses >= config_.lost_after_misses) {
        t.state = TrackState::kLost;
        out.changes.push_back({t.cage_id, t.state});
      }
    }
  }
  for (std::size_t d = 0; d < detections.size(); ++d)
    if (!det_used[d]) out.unmatched_detections.push_back(d);
  return out;
}

}  // namespace biochip::control
