#pragma once
/// \file health.hpp
/// \brief Per-chamber health monitoring and the graceful-degradation ladder.
///
/// The fault injector (`chip/fault_injector.hpp`) can kill electrodes the
/// chip's self-test never announced; the controller only sees the symptom:
/// cells keep getting lost, and recapture maneuvers keep failing, at the
/// same site. `HealthMonitor` is the watchdog that turns those symptoms into
/// decisions. It consumes the chamber's own audit trail — the same
/// `ControlEvent` stream tests assert on — so it needs no privileged access
/// to ground truth:
///
///  * repeated `kCellLost` / `kRecaptureFailed` events at one site mark the
///    site's electrode as suspect; at `suspect_after_losses` strikes the
///    monitor quarantines the surrounding region (`kSiteQuarantined`). The
///    runtime feeds the quarantined sites into its belief blocked mask and
///    the replanner, so traffic re-routes around the suspected dead zone;
///  * the chamber walks a one-way degradation ladder on the *excess*
///    blocked-site fraction (growth over the episode-start mask): normal →
///    degraded (`kHealthDegraded`: admissions throttled, sensing boosted) →
///    quarantined (`kHealthQuarantined`: no further admissions; the
///    orchestrator re-assigns or terminally fails inbound transfers).
///
/// Everything is a pure function of the event stream and configuration —
/// no RNG, no wall clock — so health decisions preserve the serial-vs-pooled
/// bitwise determinism contract.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "control/events.hpp"

namespace biochip::control {

/// Rung of the degradation ladder. Transitions are one-way within an episode
/// (a watchdog never un-suspects hardware mid-episode; a fresh episode starts
/// normal again). Open-ended streaming runs opt into `quarantine_probation`,
/// under which sites recover after their term and the ladder may climb back
/// one rung at a time with hysteresis (`kHealthRecovered`).
enum class HealthState : std::uint8_t {
  kNormal,       ///< full service
  kDegraded,     ///< admissions throttled, sensing boosted
  kQuarantined,  ///< no admissions; inbound goals re-assigned by the caller
};

const char* to_string(HealthState state);

struct HealthConfig {
  /// Master switch; disabled monitors observe nothing and never leave
  /// kNormal, so default-configured episodes are bitwise unchanged.
  bool enabled = false;
  /// kCellLost / kRecaptureFailed strikes at one site before its
  /// neighborhood is quarantined (a suspected dead electrode the self-test
  /// missed — one loss is weather, repeated losses at one spot are a fault).
  int suspect_after_losses = 2;
  /// Half-width of the quarantined square around a suspect site (1 = 3×3,
  /// matching the counter-phase ring a cage needs).
  int quarantine_ring = 1;
  /// Excess blocked-site fraction (growth over the episode-start mask) at
  /// which the chamber degrades / quarantines.
  double degraded_blocked_fraction = 0.05;
  double quarantined_blocked_fraction = 0.20;
  /// `frames_per_tick` multiplier while degraded or worse (burst sensing:
  /// spend frame budget on SNR when the chamber is suspect).
  std::size_t degraded_frames_boost = 2;
  /// Min ticks between admissions while degraded (reduced admission rate).
  int degraded_admission_cooldown = 6;
  /// Ticks after which loss strikes at a site expire (0 = never — episode
  /// semantics, where an episode is short enough that every strike stays
  /// relevant). Open-ended streaming runs set a window: a genuinely dead
  /// electrode re-strikes within any window, but transient sensor noise and
  /// stochastic escapes must not permanently condemn sites over an
  /// unbounded horizon.
  int strike_window = 0;
  /// Ticks a site quarantine lasts before the site is rehabilitated —
  /// unblocked with its strikes reset (`kSiteRehabilitated`), so a false
  /// positive recovers while a genuinely dead electrode simply re-earns its
  /// quarantine at the cost of a few probe cells per probation period.
  /// 0 = permanent (episode semantics). The chamber *ladder* stays one-way
  /// either way; probation keeps the blocked fraction from ratcheting up to
  /// the quarantine rung on open-ended streaming runs.
  int quarantine_probation = 0;
};

/// Chamber-local watchdog. Owned by the chamber's `EpisodeRuntime`, fed once
/// per supervisory tick with the slice of audit events recorded since the
/// previous observation.
class HealthMonitor {
 public:
  HealthMonitor(HealthConfig config, int cols, int rows);

  const HealthConfig& config() const { return config_; }
  HealthState state() const { return state_; }

  /// Consume one observation window: `window` is the chamber's audit events
  /// recorded since the last call, `excess_blocked_fraction` the growth of
  /// the belief blocked mask over episode start. Returns the decision events
  /// (`kSiteQuarantined` / `kHealthDegraded` / `kHealthQuarantined`, all
  /// with cage_id = -1); sites newly quarantined by this window are in
  /// `newly_quarantined()` until the next call.
  std::vector<ControlEvent> observe(int t, const std::vector<ControlEvent>& window,
                                    double excess_blocked_fraction);

  /// Sites quarantined by the last `observe` (for the caller to fold into
  /// its blocked mask and replanner config).
  const std::vector<GridCoord>& newly_quarantined() const { return fresh_; }

  /// Sites whose quarantine probation expired in the last `observe` (for
  /// the caller to clear from its blocked mask again).
  const std::vector<GridCoord>& rehabilitated() const { return rehabbed_; }

  /// Effective `frames_per_tick` multiplier for the current rung.
  std::size_t frames_multiplier() const {
    return state_ == HealthState::kNormal
               ? 1
               : (config_.degraded_frames_boost > 0 ? config_.degraded_frames_boost : 1);
  }

  /// Admission policy for the current rung: quarantined chambers admit
  /// nothing; degraded chambers admit at most once per
  /// `degraded_admission_cooldown` ticks (`last_admission` = tick of the
  /// chamber's most recent admission, or a negative value for none yet).
  bool admission_allowed(int t, int last_admission) const;

  /// Loss strikes recorded against one site so far (test/report hook).
  int strikes(GridCoord site) const;

 private:
  std::size_t index(GridCoord site) const;

  HealthConfig config_;
  int cols_;
  int rows_;
  HealthState state_ = HealthState::kNormal;
  std::vector<int> strikes_;             ///< per site, row-major
  std::vector<int> last_strike_;         ///< tick of last strike, per site
  std::vector<std::uint8_t> quarantined_;  ///< per site, row-major
  std::vector<int> quarantined_at_;      ///< tick the quarantine began
  std::vector<GridCoord> fresh_;
  std::vector<GridCoord> rehabbed_;
};

}  // namespace biochip::control
