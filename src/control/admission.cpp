#include "control/admission.hpp"

#include "common/error.hpp"

namespace biochip::control {

AdmissionController::AdmissionController(AdmissionConfig config, std::size_t n_inlets)
    : config_(config), queues_(n_inlets) {
  BIOCHIP_REQUIRE(config_.queue_capacity >= 1, "inlet queues need capacity >= 1");
  BIOCHIP_REQUIRE(config_.chamber_quota >= 1, "chamber quota must be >= 1");
  BIOCHIP_REQUIRE(config_.degraded_quota >= 0, "degraded quota must be >= 0");
  BIOCHIP_REQUIRE(config_.admissions_per_tick >= 1,
                  "need at least one admission per chamber tick");
}

std::size_t AdmissionController::check(int inlet) const {
  BIOCHIP_REQUIRE(inlet >= 0 && static_cast<std::size_t>(inlet) < queues_.size(),
                  "unknown inlet id");
  return static_cast<std::size_t>(inlet);
}

bool AdmissionController::offer(int inlet, int tick, int type) {
  std::deque<PendingCell>& q = queues_[check(inlet)];
  ++stats_.offered;
  const std::uint64_t seq = next_seq_++;
  if (q.size() >= static_cast<std::size_t>(config_.queue_capacity)) {
    ++stats_.shed;
    return false;
  }
  q.push_back({seq, tick, type, false});
  return true;
}

const PendingCell& AdmissionController::head(int inlet) const {
  const std::deque<PendingCell>& q = queues_[check(inlet)];
  BIOCHIP_REQUIRE(!q.empty(), "inlet queue is empty");
  return q.front();
}

void AdmissionController::admit_head(int inlet) {
  std::deque<PendingCell>& q = queues_[check(inlet)];
  BIOCHIP_REQUIRE(!q.empty(), "inlet queue is empty");
  q.pop_front();
  ++stats_.admitted;
}

bool AdmissionController::defer_head(int inlet) {
  std::deque<PendingCell>& q = queues_[check(inlet)];
  BIOCHIP_REQUIRE(!q.empty(), "inlet queue is empty");
  if (q.front().deferred) return false;
  q.front().deferred = true;
  ++stats_.deferrals;
  return true;
}

int AdmissionController::quota(HealthState state) const {
  switch (state) {
    case HealthState::kNormal: return config_.chamber_quota;
    case HealthState::kDegraded: return config_.degraded_quota;
    case HealthState::kQuarantined: return 0;
  }
  return 0;
}

std::size_t AdmissionController::total_queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void AdmissionController::tick_waiting() {
  stats_.queue_wait_ticks += total_queued();
}

}  // namespace biochip::control
