#include "control/engine.hpp"

#include <algorithm>
#include <cmath>

#include "cad/route.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "core/threadpool.hpp"
#include "obs/trace.hpp"
#include "sensor/detect.hpp"

namespace biochip::control {

ClosedLoopEngine::ClosedLoopEngine(chip::CageController& cages,
                                   core::ManipulationEngine& engine,
                                   const sensor::FrameSynthesizer& imager,
                                   const chip::DefectMap& defects, double site_period,
                                   ControlConfig config)
    : cages_(cages), engine_(engine), imager_(imager), defects_(defects),
      site_period_(site_period), config_(std::move(config)) {
  BIOCHIP_REQUIRE(site_period > 0.0, "site period must be positive");
  BIOCHIP_REQUIRE(config_.frames_per_tick >= 1, "need at least one frame per tick");
  BIOCHIP_REQUIRE(defects.cols() == cages.array().cols() &&
                      defects.rows() == cages.array().rows(),
                  "defect map shape does not match the array");
}

// ------------------------------------------------------------------ runtime ----

EpisodeRuntime::EpisodeRuntime(ClosedLoopEngine& owner, std::vector<CageGoal> goals,
                               std::vector<physics::ParticleBody>& bodies,
                               std::vector<std::pair<int, int>> cage_bodies,
                               Rng stream_base, core::ThreadPool* pool)
    : owner_(owner), pool_(pool), goals_(std::move(goals)), bodies_(bodies),
      cage_bodies_(std::move(cage_bodies)),
      fault_slots_(cage_bodies_.size()),
      body_active_(bodies.size(), std::uint8_t{1}),
      body_streams_(bodies.size()),
      next_body_stream_(bodies.size()),
      defects_(owner.defects_), truth_defects_(owner.defects_),
      phys_base_(stream_base.fork(0)), sense_base_(stream_base.fork(1)),
      fault_base_(stream_base.fork(2)) {
  const ControlConfig& config = owner_.config_;
  const chip::ElectrodeArray& array = owner_.cages_.array();
  capture_ = owner_.engine_.field_model().capture_radius();
  const int min_sep = owner_.cages_.min_separation();
  for (std::uint64_t& slot : fault_slots_) slot = next_fault_slot_++;
  for (std::size_t n = 0; n < body_streams_.size(); ++n)
    body_streams_[n] = static_cast<std::uint64_t>(n);

  std::size_t bidx = 0;
  for (const CageGoal& g : goals_) {
    BIOCHIP_REQUIRE(array.contains(g.destination), "destination outside the array");
    BIOCHIP_REQUIRE(body_index_of(g.cage_id, bidx), "goal cage has no tracked body");
  }

  // Self-test knowledge: which sites the defect map rules out. At episode
  // start belief and ground truth agree; runtime fault injection can grow
  // them apart (silent faults land in truth only, health quarantines in
  // belief only). Truth drives the physics, belief drives routing/admission.
  blocked_ = chip::blocked_site_mask(array, defects_, config.defect_ring);
  truth_blocked_ = blocked_;
  quarantine_mask_.assign(blocked_.size(), 0);
  initial_blocked_ = static_cast<std::size_t>(
      std::count(blocked_.begin(), blocked_.end(), std::uint8_t{1}));

  // Initial plan, ParallelTransporter-style: parked cages become zero-length
  // requests so the planner keeps traffic separated from them.
  cad::RouteConfig plan_cfg;
  plan_cfg.cols = array.cols();
  plan_cfg.rows = array.rows();
  plan_cfg.min_separation = min_sep;
  if (config.closed_loop && config.defect_aware_initial) plan_cfg.blocked = blocked_;

  std::vector<cad::RouteRequest> requests;
  std::vector<int> moving;
  for (const CageGoal& g : goals_) {
    requests.push_back({g.cage_id, owner_.cages_.site(g.cage_id), g.destination});
    moving.push_back(g.cage_id);
  }
  for (int id : owner_.cages_.cage_ids()) {
    if (std::find(moving.begin(), moving.end(), id) != moving.end()) continue;
    const GridCoord site = owner_.cages_.site(id);
    requests.push_back({id, site, site});
  }
  cad::RouteResult plan = cad::route_astar(requests, plan_cfg);
  planned_ = plan.success;
  report_.planned = plan.success;
  if (!plan.success) {
    // The report contract holds even without an episode: every goal cage
    // lands in exactly one list, every failure carries an explicit event.
    for (const CageGoal& g : goals_) {
      report_.failed_ids.push_back(g.cage_id);
      report_.events.push_back(
          {0, EventKind::kDeliveryFailed, g.cage_id, owner_.cages_.site(g.cage_id)});
    }
    goals_.clear();  // finish() must not double-account them
    return;
  }
  cad::verify_routes(requests, plan, plan_cfg);

  // Control stack. Replans are always defect-aware, even when the initial
  // plan was deliberately blind (the online-reroute exercise).
  cad::RouteConfig replan_cfg = plan_cfg;
  replan_cfg.blocked = blocked_;
  replanner_.emplace(replan_cfg);
  replanner_->commit(std::move(plan.paths));

  const double gate =
      config.tracker.gate_radius > 0.0 ? config.tracker.gate_radius : capture_;
  tracker_.emplace(config.tracker, gate);
  for (const auto& [cid, bi] : cage_bodies_) tracker_->add_track(cid);

  supervisor_.emplace(config, array, defects_, *replanner_, capture_);
  for (const CageGoal& g : goals_) supervisor_->add_cage(g.cage_id, g.destination);
  if (config.closed_loop) {
    const auto pre = supervisor_->preflight();
    report_.events.insert(report_.events.end(), pre.begin(), pre.end());
  }
  if (config.closed_loop && config.health.enabled)
    health_.emplace(config.health, array.cols(), array.rows());

  const double dt = owner_.engine_.integrator().options().dt;
  substeps_ =
      static_cast<std::size_t>(std::max(1.0, std::round(owner_.site_period_ / dt)));
  const int makespan = plan.makespan_steps;
  budget_ = config.closed_loop
                ? (config.max_ticks > 0 ? config.max_ticks : 4 * makespan + 120)
                : makespan;

  cds_base_sigma_ = owner_.imager_.cds_noise_sigma();
  threshold_ = config.threshold_sigma * cds_base_sigma_ /
               std::sqrt(static_cast<double>(config.frames_per_tick));
  bounds_ = owner_.engine_.integrator().options().bounds;

  // Tracked whole-chamber field (optional): one Laplace grid over the full
  // array at the configured resolution, maintained incrementally by the tick
  // path (field/incremental.hpp). The z extent is the physics domain height.
  if (config.field_tracking_nodes_per_pitch > 0) {
    field::ChamberDomain domain;
    domain.spacing =
        array.pitch() / static_cast<double>(config.field_tracking_nodes_per_pitch);
    const Rect extent = array.extent();
    domain.width_x = extent.max.x - extent.min.x;
    domain.width_y = extent.max.y - extent.min.y;
    domain.height = bounds_.max.z - bounds_.min.z;
    BIOCHIP_REQUIRE(domain.height > 0.0,
                    "field tracking needs a 3-D physics domain");
    std::vector<Rect> footprints;
    footprints.reserve(array.electrode_count());
    for (int r = 0; r < array.rows(); ++r)
      for (int c = 0; c < array.cols(); ++c)
        footprints.push_back(array.footprint({c, r}));
    field_tracker_.emplace(domain, std::move(footprints), /*lid_present=*/false,
                           array.pitch(), config.field_tracking);
    field_drive_.assign(array.electrode_count(), 0.0);
  }
}

bool EpisodeRuntime::body_index_of(int cage_id, std::size_t& out) const {
  for (const auto& [cid, bidx] : cage_bodies_)
    if (cid == cage_id) {
      out = static_cast<std::size_t>(bidx);
      return true;
    }
  return false;
}

bool EpisodeRuntime::site_ok(GridCoord s) const {
  const chip::ElectrodeArray& array = owner_.cages_.array();
  return blocked_[static_cast<std::size_t>(s.row) *
                      static_cast<std::size_t>(array.cols()) +
                  static_cast<std::size_t>(s.col)] == 0;
}

bool EpisodeRuntime::truth_site_ok(GridCoord s) const {
  const chip::ElectrodeArray& array = owner_.cages_.array();
  return truth_blocked_[static_cast<std::size_t>(s.row) *
                            static_cast<std::size_t>(array.cols()) +
                        static_cast<std::size_t>(s.col)] == 0;
}

void EpisodeRuntime::update_tracked_field(const std::vector<GridCoord>& sites) {
  const chip::ElectrodeArray& array = owner_.cages_.array();
  std::fill(field_drive_.begin(), field_drive_.end(), 0.0);
  for (const GridCoord s : sites)
    field_drive_[array.index(s)] = owner_.config_.field_tracking_drive;
  // Changed-electrode detection, window clustering and the re-anchor cadence
  // all live in the tracker; an unchanged pattern is a bitwise no-op.
  field_tracker_->update(field_drive_);
}

void EpisodeRuntime::refresh_blocked() {
  const chip::ElectrodeArray& array = owner_.cages_.array();
  const int ring = owner_.config_.defect_ring;
  blocked_ = chip::blocked_site_mask(array, defects_, ring);
  for (std::size_t i = 0; i < blocked_.size(); ++i)
    if (quarantine_mask_[i] != 0) blocked_[i] = 1;
  truth_blocked_ = chip::blocked_site_mask(array, truth_defects_, ring);
  if (replanner_.has_value()) replanner_->set_blocked(blocked_);
}

double EpisodeRuntime::excess_blocked_fraction() const {
  const std::size_t now = static_cast<std::size_t>(
      std::count(blocked_.begin(), blocked_.end(), std::uint8_t{1}));
  const std::size_t usable0 =
      blocked_.size() > initial_blocked_ ? blocked_.size() - initial_blocked_ : 1;
  return static_cast<double>(now - std::min(now, initial_blocked_)) /
         static_cast<double>(usable0);
}

void EpisodeRuntime::observe_health(int t) {
  if (!health_.has_value()) return;
  const std::vector<ControlEvent> window(
      report_.events.begin() + static_cast<std::ptrdiff_t>(health_scan_pos_),
      report_.events.end());
  const auto decisions = health_->observe(t, window, excess_blocked_fraction());
  if (!health_->newly_quarantined().empty() || !health_->rehabilitated().empty()) {
    const std::size_t cols =
        static_cast<std::size_t>(owner_.cages_.array().cols());
    for (const GridCoord s : health_->rehabilitated())
      quarantine_mask_[static_cast<std::size_t>(s.row) * cols +
                       static_cast<std::size_t>(s.col)] = 0;
    for (const GridCoord s : health_->newly_quarantined())
      quarantine_mask_[static_cast<std::size_t>(s.row) * cols +
                       static_cast<std::size_t>(s.col)] = 1;
    refresh_blocked();
  }
  report_.events.insert(report_.events.end(), decisions.begin(), decisions.end());
  // Decisions are not re-scanned (they carry no loss strikes anyway).
  health_scan_pos_ = report_.events.size();
}

void EpisodeRuntime::apply_electrode_fault(int t, GridCoord site,
                                           chip::FaultKind kind) {
  BIOCHIP_REQUIRE(planned_, "cannot inject into an unplanned episode");
  BIOCHIP_REQUIRE(owner_.cages_.array().contains(site),
                  "fault site outside the array");
  switch (kind) {
    case chip::FaultKind::kElectrodeDead:
      defects_.set_state(site, chip::PixelState::kDead);
      truth_defects_.set_state(site, chip::PixelState::kDead);
      break;
    case chip::FaultKind::kElectrodeStuckCage:
      defects_.set_state(site, chip::PixelState::kStuckCage);
      truth_defects_.set_state(site, chip::PixelState::kStuckCage);
      break;
    case chip::FaultKind::kElectrodeSilentDead:
      truth_defects_.set_state(site, chip::PixelState::kDead);
      break;
    default:
      throw PreconditionError("not an electrode fault kind");
  }
  refresh_blocked();
  report_.events.push_back({t, EventKind::kFaultInjected, -1, site});
}

void EpisodeRuntime::begin_sensor_dropout(int t, int row, int duration) {
  BIOCHIP_REQUIRE(planned_, "cannot inject into an unplanned episode");
  BIOCHIP_REQUIRE(row >= 0 && row < owner_.cages_.array().rows(),
                  "dropout row outside the array");
  BIOCHIP_REQUIRE(duration >= 1, "sensor faults need a positive duration");
  dropouts_.push_back({t + duration, row});
  report_.events.push_back({t, EventKind::kSensorFault, -1, {0, row}});
}

void EpisodeRuntime::begin_sensor_burst(int t, GridCoord origin, int tile,
                                        int duration) {
  BIOCHIP_REQUIRE(planned_, "cannot inject into an unplanned episode");
  BIOCHIP_REQUIRE(owner_.cages_.array().contains(origin),
                  "burst origin outside the array");
  BIOCHIP_REQUIRE(tile >= 1 && duration >= 1,
                  "sensor bursts need positive tile and duration");
  bursts_.push_back({t + duration, origin, tile});
  report_.events.push_back({t, EventKind::kSensorFault, -1, origin});
}

void EpisodeRuntime::assign_goal(int cage_id, GridCoord goal) {
  BIOCHIP_REQUIRE(planned_ && supervisor_.has_value(),
                  "cannot assign goals to an unplanned episode");
  BIOCHIP_REQUIRE(!supervisor_->supervises(cage_id),
                  "cage already has a delivery goal");
  std::size_t bidx = 0;
  BIOCHIP_REQUIRE(body_index_of(cage_id, bidx), "goal cage has no tracked body");
  BIOCHIP_REQUIRE(owner_.cages_.array().contains(goal),
                  "destination outside the array");
  supervisor_->add_cage(cage_id, goal);
  goals_.push_back({cage_id, goal});
}

void EpisodeRuntime::retarget(int cage_id, GridCoord goal) {
  BIOCHIP_REQUIRE(planned_ && supervisor_.has_value(),
                  "cannot retarget in an unplanned episode");
  supervisor_->retarget(cage_id, goal);
  for (CageGoal& g : goals_)
    if (g.cage_id == cage_id) g.destination = goal;
}

Vec3 EpisodeRuntime::trap_center(GridCoord site) const {
  return owner_.engine_.field_model().trap_center(site);
}

CageMode EpisodeRuntime::mode(int cage_id) const {
  BIOCHIP_REQUIRE(supervisor_.has_value(),
                  "no control stack: the initial plan failed");
  return supervisor_->mode(cage_id);
}

bool EpisodeRuntime::steady_state() const {
  if (!supervisor_.has_value() || !tracker_.has_value()) return false;
  for (const CageGoal& g : goals_) {
    const CageMode m = supervisor_->mode(g.cage_id);
    if (m != CageMode::kEnRoute && m != CageMode::kDelivered) return false;
    if (tracker_->state(g.cage_id) != TrackState::kOccupied) return false;
  }
  return true;
}

std::vector<ControlEvent> EpisodeRuntime::take_observed_events(bool all) {
  // With health on, only the prefix the watchdog has scanned may leave (the
  // unscanned tail still owes the monitor its loss strikes); with health off
  // nothing ever scans, so the whole trail drains.
  const std::size_t n =
      (all || !health_.has_value()) ? report_.events.size() : health_scan_pos_;
  std::vector<ControlEvent> out(report_.events.begin(),
                                report_.events.begin() + static_cast<std::ptrdiff_t>(n));
  report_.events.erase(report_.events.begin(),
                       report_.events.begin() + static_cast<std::ptrdiff_t>(n));
  health_scan_pos_ -= std::min(health_scan_pos_, n);
  return out;
}

bool EpisodeRuntime::all_delivered() const {
  return owner_.config_.closed_loop && supervisor_.has_value() &&
         supervisor_->all_delivered();
}

void EpisodeRuntime::integrate_range(int t, std::size_t nb, std::size_t ne) {
  const auto grad = [this](Vec3 p) { return owner_.engine_.field_model().grad_erms2(p); };
  for (std::size_t n = nb; n < ne; ++n) {
    if (body_active_[n] == 0) continue;  // the cell left this chamber
    // Legacy keying indexes by (tick, slot) — valid because slots are never
    // reused. Recycling mode keys by the slot's persistent admission counter
    // (`body_streams_`), which never repeats across slot reuse, so streams
    // stay collision-free under open-ended admission churn.
    Rng stream = owner_.config_.recycle_slots
                     ? phys_base_.fork(body_streams_[n]).fork(static_cast<std::uint64_t>(t))
                     : phys_base_.fork(static_cast<std::uint64_t>(t) * bodies_.size() + n);
    for (std::size_t s = 0; s < substeps_; ++s)
      owner_.engine_.integrator().step(bodies_[n], grad, stream);
  }
}

void EpisodeRuntime::tick(int t) {
  BIOCHIP_REQUIRE(planned_, "cannot tick an episode whose plan failed");
  const ControlConfig& config = owner_.config_;
  chip::CageController& cages = owner_.cages_;
  const chip::ElectrodeArray& array = cages.array();
  const double pitch = array.pitch();
  const int min_sep = cages.min_separation();
  report_.ticks = t;

  // Timing plane (null recorder = no clock read): one span per phase below.
  // Safe from worker threads — the recorder's ring is mutex-guarded, and
  // nothing read from the clock feeds back into simulation state.
  obs::PhaseTicker phase(trace_, trace_lane_, t);
  phase.begin("actuate");

  // ---- actuate one committed step per cage.
  const std::vector<int> ids = cages.cage_ids();
  std::vector<GridCoord> cur(ids.size());
  std::vector<GridCoord> next(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    cur[i] = cages.site(ids[i]);
    next[i] = replanner_->position_at(ids[i], t);
  }
  stalled_.clear();
  if (config.closed_loop) {
    // A deviating cage (paused tow, re-timed plan) can make a neighbor's
    // committed step illegal. Demote clashing movers to a one-tick stall
    // (lowest id first) until the step is pairwise legal, and re-time
    // their plans so position_at stays truthful.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < ids.size() && !changed; ++i) {
        if (next[i] == cur[i]) continue;
        for (std::size_t j = 0; j < ids.size(); ++j) {
          if (j == i) continue;
          if (chebyshev(next[i], next[j]) < min_sep) {
            next[i] = cur[i];
            stalled_.push_back(ids[i]);
            changed = true;
            break;
          }
        }
      }
    }
    for (const int id : stalled_) replanner_->hold(id, t);
  }
  std::vector<chip::CageMove> moves;
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (!(next[i] == cur[i])) moves.push_back({ids[i], next[i]});
  cages.apply_step(moves);

  // ---- physical trap set of this tick. Traps parked on unusable sites are
  // left out of the field model — no force holds their cell (this is how
  // open-loop runs demonstrably lose cells on defects). Ground truth
  // decides, not belief: a silently dead electrode drops its trap even
  // though the controller still routes over it, and a quarantined
  // (belief-blocked) site with healthy hardware keeps trapping. A rescuing
  // cage keeps its trap on any site whose own pixel physically works — the
  // ring rule guards a *towed* cell's wall, which a rescue deliberately
  // trades away.
  std::vector<GridCoord> sites;
  sites.reserve(ids.size());
  for (const int id : ids) {
    const GridCoord s = cages.site(id);
    if (truth_site_ok(s)) {
      sites.push_back(s);
    } else if (supervisor_.has_value() && supervisor_->supervises(id) &&
               supervisor_->rescuing(id) &&
               truth_defects_.state(s) == chip::PixelState::kOk) {
      sites.push_back(s);
    }
  }

  // Tracked whole-chamber field (config-gated): the actuation pattern is
  // +drive on every trap site selected above, 0 elsewhere, so a fault that
  // kills a trap — announced or silent — changes that electrode's drive and
  // dirties its window. Still the actuate phase: this is the cost of
  // re-programming the array, not of integrating bodies.
  if (field_tracker_.has_value()) update_tracked_field(sites);
  phase.begin("physics");

  // ---- physics: every body relaxes for one site period against the traps
  // selected above.
  owner_.engine_.field_model().set_sites(std::move(sites));
  if (pool_ != nullptr) {
    pool_->parallel_for(0, bodies_.size(), [&](std::size_t nb, std::size_t ne) {
      integrate_range(t, nb, ne);
    });
  } else {
    integrate_range(t, 0, bodies_.size());
  }
  report_.elapsed += owner_.site_period_;

  // ---- fault injection: kick a trapped cell out of its basin. Directed
  // escapes first (fully scripted heading, no stream draw), then the
  // stream-keyed forced/random ones. Streams are keyed (stable slot, tick):
  // hand-offs shrink/grow `cage_bodies_`, so a size-based index would
  // collide with earlier ticks' streams.
  for (const ControlConfig::DirectedEscape& de : config.directed_escapes) {
    if (de.tick != t) continue;
    std::size_t bidx = 0;
    if (!body_index_of(de.cage_id, bidx)) continue;
    physics::ParticleBody& body = bodies_[bidx];
    const GridCoord site = cages.site(de.cage_id);
    if ((body.position - trap_center(site)).norm() > capture_) continue;
    const double dist = de.distance_pitches * pitch;
    body.position += Vec3{dist * std::cos(de.angle), dist * std::sin(de.angle), 0.0};
    const Aabb inset{bounds_.min + Vec3{body.radius, body.radius, body.radius},
                     bounds_.max - Vec3{body.radius, body.radius, body.radius}};
    body.position = inset.clamp(body.position);
    report_.events.push_back({t, EventKind::kEscapeInjected, de.cage_id, site});
  }
  for (std::size_t n = 0; n < cage_bodies_.size(); ++n) {
    const auto [cage_id, bidx] = cage_bodies_[n];
    Rng fault = fault_base_.fork(fault_slots_[n]).fork(static_cast<std::uint64_t>(t));
    const bool forced =
        std::find(config.forced_escapes.begin(), config.forced_escapes.end(),
                  std::pair<int, int>{t, cage_id}) != config.forced_escapes.end();
    const bool random_escape =
        config.escape_rate > 0.0 && fault.bernoulli(config.escape_rate);
    if (!forced && !random_escape) continue;
    physics::ParticleBody& body = bodies_[static_cast<std::size_t>(bidx)];
    const GridCoord site = cages.site(cage_id);
    if ((body.position - trap_center(site)).norm() > capture_)
      continue;  // already free — nothing to escape from
    const double angle = fault.uniform(0.0, 2.0 * constants::pi);
    const double dist = config.escape_distance_pitches * pitch;
    body.position += Vec3{dist * std::cos(angle), dist * std::sin(angle), 0.0};
    const Aabb inset{bounds_.min + Vec3{body.radius, body.radius, body.radius},
                     bounds_.max - Vec3{body.radius, body.radius, body.radius}};
    body.position = inset.clamp(body.position);
    report_.events.push_back({t, EventKind::kEscapeInjected, cage_id, site});
  }

  if (!config.closed_loop) return;
  phase.begin("sense");

  // ---- sense: one averaged CDS frame of the true scene, with the defect
  // map's pixel faults overlaid, thresholded into detections. Detections
  // over defective pixels are rejected up front (stuck-cage phantoms) —
  // the chip's self-test map is legitimate controller knowledge.
  std::vector<sensor::FrameTarget> targets;
  targets.reserve(bodies_.size());
  for (std::size_t n = 0; n < bodies_.size(); ++n)
    if (body_active_[n] != 0) targets.push_back({bodies_[n].position, bodies_[n].radius});
  // Burst sensing: a degraded chamber spends more frames per tick on SNR
  // (the claim-C4 time-for-quality trade, re-spent when the hardware is
  // suspect). Its healthy-direction counterpart: a kNormal chamber whose
  // every supervised cage is confirmed occupied on its nominal leg spends
  // *fewer* frames (`steady_frames_divisor`) — sense slow while nothing is
  // suspect. The detection threshold tracks the averaged-noise σ either way.
  const std::size_t boost =
      health_.has_value() ? health_->frames_multiplier() : std::size_t{1};
  std::size_t frames = config.frames_per_tick * boost;
  if (boost == 1 && config.steady_frames_divisor > 1 && steady_state())
    frames = std::max<std::size_t>(1, frames / config.steady_frames_divisor);
  report_.frames_sensed += frames;
  threshold_ = config.threshold_sigma * cds_base_sigma_ /
               std::sqrt(static_cast<double>(frames));
  Rng sense = sense_base_.fork(static_cast<std::uint64_t>(t));
  Grid2 frame = owner_.imager_.averaged_frame(targets, sense, frames);
  // Bad-pixel masking: the controller zeroes known-bad pixels before
  // thresholding (its self-test map is legitimate calibration knowledge).
  // The mask writes exactly the pixel set the raw fault overlay would, so
  // with masking on the overlay is applied directly as zeros in one pass
  // — otherwise every stuck-cage pixel reads as a permanently parked
  // phantom, and dropping whole detections instead would blind the
  // tracker to real cells whose clusters merge with a defective pixel (a
  // cell next to a defect keeps its healthy pixels; only its centroid
  // biases slightly).
  sensor::apply_pixel_faults(
      frame, defects_,
      config.bad_pixel_masking ? 0.0 : -config.stuck_cage_thresholds * threshold_);
  // Transient sensor faults (injected, ground truth — the controller has no
  // mask for them): row dropouts read zero, bursts read phantom particles.
  // Expired overlays are pruned so a soak's memory stays bounded.
  dropouts_.erase(std::remove_if(dropouts_.begin(), dropouts_.end(),
                                 [&](const SensorDropout& d) { return t >= d.until; }),
                  dropouts_.end());
  bursts_.erase(std::remove_if(bursts_.begin(), bursts_.end(),
                               [&](const SensorBurst& b) { return t >= b.until; }),
                bursts_.end());
  for (const SensorDropout& d : dropouts_)
    for (std::size_t i = 0; i < frame.nx(); ++i)
      frame.at(i, static_cast<std::size_t>(d.row)) = 0.0;
  for (const SensorBurst& b : bursts_)
    for (int dr = 0; dr < b.tile; ++dr)
      for (int dc = 0; dc < b.tile; ++dc) {
        const GridCoord s{b.origin.col + dc, b.origin.row + dr};
        if (!array.contains(s)) continue;
        frame.at(static_cast<std::size_t>(s.col), static_cast<std::size_t>(s.row)) =
            -config.stuck_cage_thresholds * threshold_;
      }
  const std::vector<sensor::Detection> detections =
      sensor::detect_threshold(frame, array, threshold_);

  // ---- track: associate detections to per-cage trap centers.
  phase.begin("track");
  const std::vector<int> tracked = tracker_->cage_ids();
  std::vector<Vec2> expected;
  expected.reserve(tracked.size());
  for (const int id : tracked) expected.push_back(trap_center(cages.site(id)).xy());
  const TrackUpdate update = tracker_->update(tracked, expected, detections);

  // ---- supervise: pause / recapture / re-route; events are the audit log.
  // (The "plan" phase of the span catalog: replanning happens inside the
  // supervisor's step, so one span covers supervise + replan + health.)
  phase.begin("plan");
  const auto events = supervisor_->step(t, *tracker_, detections, update, cages, stalled_);
  report_.events.insert(report_.events.end(), events.begin(), events.end());

  // ---- health: the watchdog reads the audit trail it just grew and walks
  // the degradation ladder; fresh quarantines feed the belief blocked mask.
  observe_health(t);
}

void EpisodeRuntime::idle_tick(int t) {
  BIOCHIP_REQUIRE(planned_, "cannot tick an episode whose plan failed");
  report_.ticks = t;
  // The world is frozen, but fault hooks may have recorded events since the
  // last observation — ladder decisions must fire exactly as they would in
  // a non-elided run.
  observe_health(t);
}

EpisodeReport EpisodeRuntime::finish() {
  // Ground-truth delivery accounting (same criterion for open and closed
  // loop): at the destination with the cell inside the capture basin.
  for (const CageGoal& g : goals_) {
    std::size_t bidx = 0;
    BIOCHIP_REQUIRE(body_index_of(g.cage_id, bidx), "goal cage lost its body");
    const bool at_goal = owner_.cages_.site(g.cage_id) == g.destination;
    const Vec3 trap = trap_center(g.destination);
    if (at_goal && (bodies_[bidx].position - trap).norm() <= capture_) {
      report_.delivered_ids.push_back(g.cage_id);
      // Open-loop runs (and budget-truncated closed ones) have no supervisor
      // to announce the delivery; keep the audit trail complete.
      const bool announced =
          std::any_of(report_.events.begin(), report_.events.end(), [&](const auto& e) {
            return e.cage_id == g.cage_id && e.kind == EventKind::kDelivered;
          });
      if (!announced)
        report_.events.push_back({report_.ticks, EventKind::kDelivered, g.cage_id,
                                  owner_.cages_.site(g.cage_id)});
    } else {
      report_.failed_ids.push_back(g.cage_id);
      report_.events.push_back({report_.ticks, EventKind::kDeliveryFailed, g.cage_id,
                                owner_.cages_.site(g.cage_id)});
    }
  }
  if (replanner_.has_value()) report_.replans = replanner_->replans();
  report_.success = report_.planned && report_.failed_ids.empty();
  return report_;
}

std::optional<int> EpisodeRuntime::admit_cage(GridCoord at, GridCoord goal, int t,
                                              const physics::ParticleBody& cell) {
  BIOCHIP_REQUIRE(planned_, "cannot admit into an unplanned episode");
  chip::CageController& cages = owner_.cages_;
  BIOCHIP_REQUIRE(cages.array().contains(at) && cages.array().contains(goal),
                  "hand-off sites outside the array");
  // Degradation ladder: a quarantined chamber admits nothing; a degraded one
  // throttles the admission rate. Same deny path as congestion — the caller
  // retries with backoff or escalates.
  if (health_.has_value() && !health_->admission_allowed(t, last_admit_tick_))
    return std::nullopt;
  // Congestion check, physical and temporal: the port site must be clear of
  // live cages now AND of every committed reservation from tick t on (the
  // planner only checks conflicts from the first *move* onward).
  if (!cages.can_place(at)) return std::nullopt;
  const int min_sep = cages.min_separation();
  for (const cad::RoutedPath& p : replanner_->paths())
    if (chebyshev(p.position_at(t), at) < min_sep) return std::nullopt;

  // Route through this chamber's own reservation table, defect-aware.
  const int id = cages.create(at);
  const auto fresh =
      cad::route_astar_reserved({id, at, goal}, replanner_->config(),
                                replanner_->paths(), t);
  if (!fresh) {
    cages.destroy(id);
    return std::nullopt;
  }
  // Absolute time frame: the fresh route starts at tick t (`start = t`), and
  // `position_at` clamps every earlier tick to the port site — observably
  // identical to materializing t copies of `at`, without the O(t) prefix
  // that would make open-system admission cost grow with elapsed time.
  cad::RoutedPath path = *fresh;
  path.id = id;
  replanner_->add_path(std::move(path));

  tracker_->add_track(id);
  supervisor_->add_cage(id, goal);
  goals_.push_back({id, goal});
  std::size_t slot = bodies_.size();
  if (owner_.config_.recycle_slots && !free_body_slots_.empty()) {
    slot = free_body_slots_.back();
    free_body_slots_.pop_back();
    bodies_[slot] = cell;
    body_active_[slot] = 1;
    body_streams_[slot] = next_body_stream_++;
  } else {
    bodies_.push_back(cell);
    body_active_.push_back(1);
    body_streams_.push_back(next_body_stream_++);
  }
  cage_bodies_.emplace_back(id, static_cast<int>(slot));
  fault_slots_.push_back(next_fault_slot_++);
  last_admit_tick_ = t;
  report_.events.push_back({t, EventKind::kTransferAdmitted, id, at});
  return id;
}

physics::ParticleBody EpisodeRuntime::body_of(int cage_id) const {
  std::size_t bidx = 0;
  BIOCHIP_REQUIRE(body_index_of(cage_id, bidx), "cage has no tracked body");
  return bodies_[bidx];
}

physics::ParticleBody EpisodeRuntime::release_cage(int cage_id) {
  std::size_t bidx = 0;
  BIOCHIP_REQUIRE(body_index_of(cage_id, bidx), "released cage has no tracked body");
  const physics::ParticleBody cell = bodies_[bidx];
  body_active_[bidx] = 0;
  if (owner_.config_.recycle_slots) free_body_slots_.push_back(bidx);
  for (std::size_t n = 0; n < cage_bodies_.size(); ++n) {
    if (cage_bodies_[n].first != cage_id) continue;
    cage_bodies_.erase(cage_bodies_.begin() + static_cast<std::ptrdiff_t>(n));
    fault_slots_.erase(fault_slots_.begin() + static_cast<std::ptrdiff_t>(n));
    break;
  }
  owner_.cages_.destroy(cage_id);
  if (tracker_.has_value()) tracker_->remove_track(cage_id);
  if (supervisor_.has_value() && supervisor_->supervises(cage_id))
    supervisor_->remove_cage(cage_id);
  if (replanner_.has_value()) replanner_->remove_path(cage_id);
  drop_goal(cage_id);
  return cell;
}

void EpisodeRuntime::drop_goal(int cage_id) {
  goals_.erase(std::remove_if(goals_.begin(), goals_.end(),
                              [&](const CageGoal& g) { return g.cage_id == cage_id; }),
               goals_.end());
}

// ------------------------------------------------------------------- driver ----

EpisodeReport ClosedLoopEngine::run(const std::vector<CageGoal>& goals,
                                    std::vector<physics::ParticleBody>& bodies,
                                    const std::vector<std::pair<int, int>>& cage_bodies,
                                    Rng stream_base, core::ThreadPool* pool) {
  EpisodeRuntime runtime(*this, goals, bodies, cage_bodies, stream_base, pool);
  if (!runtime.planned()) return runtime.finish();
  for (int t = 1; t <= runtime.budget(); ++t) {
    runtime.tick(t);
    if (runtime.all_delivered()) break;
  }
  return runtime.finish();
}

}  // namespace biochip::control
