#include "control/engine.hpp"

#include <algorithm>
#include <cmath>

#include "cad/route.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "control/replanner.hpp"
#include "control/supervisor.hpp"
#include "control/tracker.hpp"
#include "core/threadpool.hpp"
#include "sensor/detect.hpp"

namespace biochip::control {

ClosedLoopEngine::ClosedLoopEngine(chip::CageController& cages,
                                   core::ManipulationEngine& engine,
                                   const sensor::FrameSynthesizer& imager,
                                   const chip::DefectMap& defects, double site_period,
                                   ControlConfig config)
    : cages_(cages), engine_(engine), imager_(imager), defects_(defects),
      site_period_(site_period), config_(std::move(config)) {
  BIOCHIP_REQUIRE(site_period > 0.0, "site period must be positive");
  BIOCHIP_REQUIRE(config_.frames_per_tick >= 1, "need at least one frame per tick");
  BIOCHIP_REQUIRE(defects.cols() == cages.array().cols() &&
                      defects.rows() == cages.array().rows(),
                  "defect map shape does not match the array");
}

EpisodeReport ClosedLoopEngine::run(const std::vector<CageGoal>& goals,
                                    std::vector<physics::ParticleBody>& bodies,
                                    const std::vector<std::pair<int, int>>& cage_bodies,
                                    Rng stream_base, core::ThreadPool* pool) {
  EpisodeReport report;
  const chip::ElectrodeArray& array = cages_.array();
  const double pitch = array.pitch();
  const double capture = engine_.field_model().capture_radius();
  const int min_sep = cages_.min_separation();

  const auto body_of = [&](int cage_id) {
    for (const auto& [cid, bidx] : cage_bodies)
      if (cid == cage_id) return bidx;
    return -1;
  };
  for (const CageGoal& g : goals) {
    BIOCHIP_REQUIRE(array.contains(g.destination), "destination outside the array");
    BIOCHIP_REQUIRE(body_of(g.cage_id) >= 0, "goal cage has no tracked body");
  }

  // Self-test knowledge: which sites the defect map rules out. The same mask
  // drives both the physics (a trap parked there exerts no force — its
  // counter-phase wall is broken) and the routing blocked set.
  const std::vector<std::uint8_t> blocked =
      chip::blocked_site_mask(array, defects_, config_.defect_ring);
  const auto site_ok = [&](GridCoord s) {
    return blocked[static_cast<std::size_t>(s.row) *
                       static_cast<std::size_t>(array.cols()) +
                   static_cast<std::size_t>(s.col)] == 0;
  };

  // Initial plan, ParallelTransporter-style: parked cages become zero-length
  // requests so the planner keeps traffic separated from them.
  cad::RouteConfig plan_cfg;
  plan_cfg.cols = array.cols();
  plan_cfg.rows = array.rows();
  plan_cfg.min_separation = min_sep;
  if (config_.closed_loop && config_.defect_aware_initial) plan_cfg.blocked = blocked;

  std::vector<cad::RouteRequest> requests;
  std::vector<int> moving;
  for (const CageGoal& g : goals) {
    requests.push_back({g.cage_id, cages_.site(g.cage_id), g.destination});
    moving.push_back(g.cage_id);
  }
  for (int id : cages_.cage_ids()) {
    if (std::find(moving.begin(), moving.end(), id) != moving.end()) continue;
    const GridCoord site = cages_.site(id);
    requests.push_back({id, site, site});
  }
  cad::RouteResult plan = cad::route_astar(requests, plan_cfg);
  report.planned = plan.success;
  if (!plan.success) {
    // The report contract holds even without an episode: every goal cage
    // lands in exactly one list, every failure carries an explicit event.
    for (const CageGoal& g : goals) {
      report.failed_ids.push_back(g.cage_id);
      report.events.push_back(
          {0, EventKind::kDeliveryFailed, g.cage_id, cages_.site(g.cage_id)});
    }
    return report;
  }
  cad::verify_routes(requests, plan, plan_cfg);

  // Control stack. Replans are always defect-aware, even when the initial
  // plan was deliberately blind (the online-reroute exercise).
  cad::RouteConfig replan_cfg = plan_cfg;
  replan_cfg.blocked = blocked;
  Replanner replanner(replan_cfg);
  replanner.commit(std::move(plan.paths));

  const double gate = config_.tracker.gate_radius > 0.0 ? config_.tracker.gate_radius
                                                        : capture;
  OccupancyTracker tracker(config_.tracker, gate);
  for (const auto& [cid, bidx] : cage_bodies) tracker.add_track(cid);

  Supervisor supervisor(config_, array, defects_, replanner);
  for (const CageGoal& g : goals) supervisor.add_cage(g.cage_id, g.destination);
  if (config_.closed_loop) {
    const auto pre = supervisor.preflight();
    report.events.insert(report.events.end(), pre.begin(), pre.end());
  }

  // Disjoint counter-based stream spaces: physics per (tick, body), sensing
  // per tick, fault injection per (tick, tracked cage). Bitwise identical
  // for any pool chunking — and with no pool at all.
  const Rng phys_base = stream_base.fork(0);
  const Rng sense_base = stream_base.fork(1);
  const Rng fault_base = stream_base.fork(2);

  const double dt = engine_.integrator().options().dt;
  const auto substeps =
      static_cast<std::size_t>(std::max(1.0, std::round(site_period_ / dt)));
  const int makespan = plan.makespan_steps;
  const int budget =
      config_.closed_loop
          ? (config_.max_ticks > 0 ? config_.max_ticks : 4 * makespan + 120)
          : makespan;

  const double cds_sigma = imager_.cds_noise_sigma() /
                           std::sqrt(static_cast<double>(config_.frames_per_tick));
  const double threshold = config_.threshold_sigma * cds_sigma;
  const Aabb bounds = engine_.integrator().options().bounds;

  const auto grad = [this](Vec3 p) { return engine_.field_model().grad_erms2(p); };
  const auto integrate_range = [&](int t, std::size_t nb, std::size_t ne) {
    for (std::size_t n = nb; n < ne; ++n) {
      Rng stream =
          phys_base.fork(static_cast<std::uint64_t>(t) * bodies.size() + n);
      for (std::size_t s = 0; s < substeps; ++s)
        engine_.integrator().step(bodies[n], grad, stream);
    }
  };

  std::vector<int> stalled;
  for (int t = 1; t <= budget; ++t) {
    report.ticks = t;

    // ---- actuate one committed step per cage.
    const std::vector<int> ids = cages_.cage_ids();
    std::vector<GridCoord> cur(ids.size());
    std::vector<GridCoord> next(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      cur[i] = cages_.site(ids[i]);
      next[i] = replanner.position_at(ids[i], t);
    }
    stalled.clear();
    if (config_.closed_loop) {
      // A deviating cage (paused tow, re-timed plan) can make a neighbor's
      // committed step illegal. Demote clashing movers to a one-tick stall
      // (lowest id first) until the step is pairwise legal, and re-time
      // their plans so position_at stays truthful.
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t i = 0; i < ids.size() && !changed; ++i) {
          if (next[i] == cur[i]) continue;
          for (std::size_t j = 0; j < ids.size(); ++j) {
            if (j == i) continue;
            if (chebyshev(next[i], next[j]) < min_sep) {
              next[i] = cur[i];
              stalled.push_back(ids[i]);
              changed = true;
              break;
            }
          }
        }
      }
      for (const int id : stalled) replanner.hold(id, t);
    }
    std::vector<chip::CageMove> moves;
    for (std::size_t i = 0; i < ids.size(); ++i)
      if (!(next[i] == cur[i])) moves.push_back({ids[i], next[i]});
    cages_.apply_step(moves);

    // ---- physics: every body relaxes for one site period. Traps parked on
    // unusable sites are left out of the field model — no force holds their
    // cell (this is how open-loop runs demonstrably lose cells on defects).
    std::vector<GridCoord> sites;
    sites.reserve(ids.size());
    for (const int id : ids) {
      const GridCoord s = cages_.site(id);
      if (site_ok(s)) sites.push_back(s);
    }
    engine_.field_model().set_sites(std::move(sites));
    if (pool != nullptr) {
      pool->parallel_for(0, bodies.size(), [&](std::size_t nb, std::size_t ne) {
        integrate_range(t, nb, ne);
      });
    } else {
      integrate_range(t, 0, bodies.size());
    }
    report.elapsed += site_period_;

    // ---- fault injection: kick a trapped cell out of its basin.
    for (std::size_t n = 0; n < cage_bodies.size(); ++n) {
      const auto [cage_id, bidx] = cage_bodies[n];
      Rng fault =
          fault_base.fork(static_cast<std::uint64_t>(t) * cage_bodies.size() + n);
      const bool forced =
          std::find(config_.forced_escapes.begin(), config_.forced_escapes.end(),
                    std::pair<int, int>{t, cage_id}) != config_.forced_escapes.end();
      const bool random_escape =
          config_.escape_rate > 0.0 && fault.bernoulli(config_.escape_rate);
      if (!forced && !random_escape) continue;
      physics::ParticleBody& body = bodies[static_cast<std::size_t>(bidx)];
      const GridCoord site = cages_.site(cage_id);
      if ((body.position - engine_.field_model().trap_center(site)).norm() > capture)
        continue;  // already free — nothing to escape from
      const double angle = fault.uniform(0.0, 2.0 * constants::pi);
      const double dist = config_.escape_distance_pitches * pitch;
      body.position += Vec3{dist * std::cos(angle), dist * std::sin(angle), 0.0};
      const Aabb inset{bounds.min + Vec3{body.radius, body.radius, body.radius},
                       bounds.max - Vec3{body.radius, body.radius, body.radius}};
      body.position = inset.clamp(body.position);
      report.events.push_back({t, EventKind::kEscapeInjected, cage_id, site});
    }

    if (!config_.closed_loop) continue;

    // ---- sense: one averaged CDS frame of the true scene, with the defect
    // map's pixel faults overlaid, thresholded into detections. Detections
    // over defective pixels are rejected up front (stuck-cage phantoms) —
    // the chip's self-test map is legitimate controller knowledge.
    std::vector<sensor::FrameTarget> targets;
    targets.reserve(bodies.size());
    for (const physics::ParticleBody& b : bodies)
      targets.push_back({b.position, b.radius});
    Rng sense = sense_base.fork(static_cast<std::uint64_t>(t));
    Grid2 frame = imager_.averaged_frame(targets, sense, config_.frames_per_tick);
    // Bad-pixel masking: the controller zeroes known-bad pixels before
    // thresholding (its self-test map is legitimate calibration knowledge).
    // The mask writes exactly the pixel set the raw fault overlay would, so
    // with masking on the overlay is applied directly as zeros in one pass
    // — otherwise every stuck-cage pixel reads as a permanently parked
    // phantom, and dropping whole detections instead would blind the
    // tracker to real cells whose clusters merge with a defective pixel (a
    // cell next to a defect keeps its healthy pixels; only its centroid
    // biases slightly).
    sensor::apply_pixel_faults(
        frame, defects_,
        config_.bad_pixel_masking ? 0.0 : -config_.stuck_cage_thresholds * threshold);
    const std::vector<sensor::Detection> detections =
        sensor::detect_threshold(frame, array, threshold);

    // ---- track: associate detections to per-cage trap centers.
    const std::vector<int> tracked = tracker.cage_ids();
    std::vector<Vec2> expected;
    expected.reserve(tracked.size());
    for (const int id : tracked)
      expected.push_back(engine_.field_model().trap_center(cages_.site(id)).xy());
    const TrackUpdate update = tracker.update(tracked, expected, detections);

    // ---- supervise: pause / recapture / re-route; events are the audit log.
    const auto events =
        supervisor.step(t, tracker, detections, update, cages_, stalled);
    report.events.insert(report.events.end(), events.begin(), events.end());
    if (supervisor.all_delivered()) break;
  }

  // Ground-truth delivery accounting (same criterion for open and closed
  // loop): at the destination with the cell inside the capture basin.
  for (const CageGoal& g : goals) {
    const auto bidx = static_cast<std::size_t>(body_of(g.cage_id));
    const bool at_goal = cages_.site(g.cage_id) == g.destination;
    const Vec3 trap = engine_.field_model().trap_center(g.destination);
    if (at_goal && (bodies[bidx].position - trap).norm() <= capture) {
      report.delivered_ids.push_back(g.cage_id);
      // Open-loop runs (and budget-truncated closed ones) have no supervisor
      // to announce the delivery; keep the audit trail complete.
      const bool announced =
          std::any_of(report.events.begin(), report.events.end(), [&](const auto& e) {
            return e.cage_id == g.cage_id && e.kind == EventKind::kDelivered;
          });
      if (!announced)
        report.events.push_back({report.ticks, EventKind::kDelivered, g.cage_id,
                                 cages_.site(g.cage_id)});
    } else {
      report.failed_ids.push_back(g.cage_id);
      report.events.push_back({report.ticks, EventKind::kDeliveryFailed, g.cage_id,
                               cages_.site(g.cage_id)});
    }
  }
  report.replans = replanner.replans();
  report.success = report.planned && report.failed_ids.empty();
  return report;
}

}  // namespace biochip::control
