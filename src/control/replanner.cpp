#include "control/replanner.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biochip::control {

Replanner::Replanner(cad::RouteConfig config) : config_(std::move(config)) {
  BIOCHIP_REQUIRE(config_.cols >= 1 && config_.rows >= 1,
                  "replanner needs a non-empty grid");
}

void Replanner::commit(std::vector<cad::RoutedPath> paths) {
  paths_ = std::move(paths);
  for (const cad::RoutedPath& p : paths_)
    BIOCHIP_REQUIRE(!p.waypoints.empty(), "committed path has no waypoints");
}

void Replanner::add_path(cad::RoutedPath path) {
  BIOCHIP_REQUIRE(!path.waypoints.empty(), "committed path has no waypoints");
  BIOCHIP_REQUIRE(!has_path(path.id), "cage already has a committed path");
  paths_.push_back(std::move(path));
}

void Replanner::remove_path(int cage_id) {
  path(cage_id);  // validates
  paths_.erase(std::remove_if(paths_.begin(), paths_.end(),
                              [&](const cad::RoutedPath& p) { return p.id == cage_id; }),
               paths_.end());
}

bool Replanner::has_path(int cage_id) const {
  for (const cad::RoutedPath& p : paths_)
    if (p.id == cage_id) return true;
  return false;
}

cad::RoutedPath& Replanner::path(int cage_id) {
  for (cad::RoutedPath& p : paths_)
    if (p.id == cage_id) return p;
  throw PreconditionError("no committed path for cage " + std::to_string(cage_id));
}

const cad::RoutedPath& Replanner::path(int cage_id) const {
  return const_cast<Replanner*>(this)->path(cage_id);
}

GridCoord Replanner::position_at(int cage_id, int t) const {
  return path(cage_id).position_at(t);
}

bool Replanner::parked_after(int cage_id, int t) const {
  const cad::RoutedPath& p = path(cage_id);
  const GridCoord here = p.position_at(t);
  for (std::size_t s = static_cast<std::size_t>(std::max(t - p.start, 0));
       s < p.waypoints.size(); ++s)
    if (!(p.waypoints[s] == here)) return false;
  return true;
}

int Replanner::horizon() const {
  int h = 0;
  for (const cad::RoutedPath& p : paths_) h = std::max(h, p.last_step());
  return h;
}

void Replanner::hold(int cage_id, int t) {
  cad::RoutedPath& p = path(cage_id);
  const int rel = t - p.start;
  BIOCHIP_REQUIRE(rel >= 1, "cannot hold before the first step");
  if (p.waypoints.size() <= static_cast<std::size_t>(rel)) return;  // already parked
  p.waypoints.insert(p.waypoints.begin() + rel,
                     p.waypoints[static_cast<std::size_t>(rel) - 1]);
}

void Replanner::park(int cage_id, int t) {
  cad::RoutedPath& p = path(cage_id);
  const int rel = std::max(t - p.start, 0);
  if (p.waypoints.size() > static_cast<std::size_t>(rel) + 1)
    p.waypoints.resize(static_cast<std::size_t>(rel) + 1);
}

void Replanner::compact(int t) {
  // Keep position_at(s) exact for every s >= t-1 (`hold(t)` re-times against
  // the t-1 position); earlier history clamps to the first retained waypoint,
  // which only replans older than one tick would ever read — and the engine
  // never issues those.
  for (cad::RoutedPath& p : paths_) {
    int drop = (t - 1) - p.start;
    const int last = static_cast<int>(p.waypoints.size()) - 1;
    if (drop > last) drop = last;
    if (drop <= 0) continue;
    p.waypoints.erase(p.waypoints.begin(), p.waypoints.begin() + drop);
    p.start += drop;
  }
}

void Replanner::set_blocked(std::vector<std::uint8_t> blocked) {
  BIOCHIP_REQUIRE(blocked.empty() ||
                      blocked.size() == static_cast<std::size_t>(config_.cols) *
                                            static_cast<std::size_t>(config_.rows),
                  "blocked mask shape does not match the route grid");
  config_.blocked = std::move(blocked);
}

bool Replanner::replan(int cage_id, GridCoord to, int t_now) {
  return replan(cage_id, to, t_now, config_.blocked);
}

bool Replanner::replan(int cage_id, GridCoord to, int t_now,
                       const std::vector<std::uint8_t>& blocked_override) {
  cad::RoutedPath& own = path(cage_id);
  const GridCoord from = own.position_at(t_now);
  std::vector<cad::RoutedPath> committed;
  committed.reserve(paths_.size() - 1);
  for (const cad::RoutedPath& p : paths_)
    if (p.id != cage_id) committed.push_back(p);
  cad::RouteConfig cfg = config_;
  cfg.blocked = blocked_override;
  const auto fresh =
      cad::route_astar_reserved({cage_id, from, to}, cfg, committed, t_now);
  if (!fresh) return false;
  // Keep retained history up to t_now-1, then splice the new route (starts
  // at t_now). History older than the path's own start was compacted away
  // and stays away.
  const int base = std::min(own.start, t_now);
  std::vector<GridCoord> merged;
  merged.reserve(static_cast<std::size_t>(t_now - base) + fresh->waypoints.size());
  for (int t = base; t < t_now; ++t) merged.push_back(own.position_at(t));
  merged.insert(merged.end(), fresh->waypoints.begin(), fresh->waypoints.end());
  own.waypoints = std::move(merged);
  own.start = base;
  ++replans_;
  return true;
}

bool Replanner::enters_blocked_ahead(int cage_id, int t, int lookahead) const {
  const cad::RoutedPath& p = path(cage_id);
  for (int s = t + 1; s <= t + lookahead; ++s)
    if (config_.is_blocked(p.position_at(s))) return true;
  return false;
}

}  // namespace biochip::control
