#include "control/supervisor.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace biochip::control {

Supervisor::Supervisor(const ControlConfig& config, const chip::ElectrodeArray& array,
                       const chip::DefectMap& defects, Replanner& replanner,
                       double capture_radius)
    : config_(config), array_(array), defects_(defects), replanner_(replanner),
      capture_radius_(capture_radius) {
  BIOCHIP_REQUIRE(capture_radius_ > 0.0, "capture radius must be positive");
}

void Supervisor::add_cage(int cage_id, GridCoord goal) {
  const auto it =
      std::lower_bound(cages_.begin(), cages_.end(), cage_id,
                       [](const Cage& c, int id) { return c.cage_id < id; });
  BIOCHIP_REQUIRE(it == cages_.end() || it->cage_id != cage_id,
                  "cage already supervised");
  BIOCHIP_REQUIRE(replanner_.has_path(cage_id),
                  "supervised cage needs a committed path");
  Cage c;
  c.cage_id = cage_id;
  c.goal = goal;
  cages_.insert(it, c);
}

void Supervisor::remove_cage(int cage_id) {
  cage(cage_id);  // validates
  cages_.erase(std::remove_if(cages_.begin(), cages_.end(),
                              [&](const Cage& c) { return c.cage_id == cage_id; }),
               cages_.end());
}

bool Supervisor::supervises(int cage_id) const {
  return std::any_of(cages_.begin(), cages_.end(),
                     [&](const Cage& c) { return c.cage_id == cage_id; });
}

Supervisor::Cage& Supervisor::cage(int cage_id) {
  for (Cage& c : cages_)
    if (c.cage_id == cage_id) return c;
  throw PreconditionError("cage not supervised: " + std::to_string(cage_id));
}

const Supervisor::Cage& Supervisor::cage(int cage_id) const {
  return const_cast<Supervisor*>(this)->cage(cage_id);
}

CageMode Supervisor::mode(int cage_id) const { return cage(cage_id).mode; }

GridCoord Supervisor::goal(int cage_id) const { return cage(cage_id).goal; }

bool Supervisor::rescuing(int cage_id) const { return cage(cage_id).rescue; }

void Supervisor::retarget(int cage_id, GridCoord goal) {
  BIOCHIP_REQUIRE(array_.contains(goal), "retarget goal outside the array");
  Cage& c = cage(cage_id);
  c.goal = goal;
  if (c.mode != CageMode::kPaused) c.mode = CageMode::kEnRoute;
  c.recapture_wait = 0;
  // No replan here: the parked-retry branch of `step` routes toward the new
  // goal on the next tick, through the usual backoff discipline.
}

bool Supervisor::all_delivered() const {
  return std::all_of(cages_.begin(), cages_.end(),
                     [](const Cage& c) { return c.mode == CageMode::kDelivered; });
}

bool Supervisor::credible_fix(Vec2 position) const {
  const GridCoord pixel = array_.nearest(position);
  return defects_.state(pixel) == chip::PixelState::kOk;
}

std::optional<GridCoord> Supervisor::capture_site_for(Vec2 fix) const {
  const GridCoord base = array_.nearest(fix);
  std::optional<GridCoord> best;
  double best_d = std::numeric_limits<double>::infinity();
  for (int dr = -2; dr <= 2; ++dr)
    for (int dc = -2; dc <= 2; ++dc) {
      const GridCoord site{base.col + dc, base.row + dr};
      if (!array_.contains(site)) continue;
      if (replanner_.config().is_blocked(site)) continue;
      const double d = (array_.center(site) - fix).norm();
      // Deterministic: nearest first, then smallest (row, col).
      const bool better =
          d < best_d ||
          (d == best_d && best.has_value() &&
           (site.row < best->row || (site.row == best->row && site.col < best->col)));
      if (better) {
        best_d = d;
        best = site;
      }
    }
  return best;
}

std::optional<GridCoord> Supervisor::capture_site_relaxed(Vec2 fix) const {
  const GridCoord base = array_.nearest(fix);
  std::optional<GridCoord> best;
  double best_d = std::numeric_limits<double>::infinity();
  for (int dr = -2; dr <= 2; ++dr)
    for (int dc = -2; dc <= 2; ++dc) {
      const GridCoord site{base.col + dc, base.row + dr};
      if (!array_.contains(site)) continue;
      if (defects_.state(site) != chip::PixelState::kOk) continue;  // own pixel only
      const double d = (array_.center(site) - fix).norm();
      if (d > capture_radius_) continue;  // the basin must reach the cell
      const bool better =
          d < best_d ||
          (d == best_d && best.has_value() &&
           (site.row < best->row || (site.row == best->row && site.col < best->col)));
      if (better) {
        best_d = d;
        best = site;
      }
    }
  return best;
}

std::vector<std::uint8_t> Supervisor::relaxed_blocked() const {
  // Ring-0 semantics: an empty cage only needs its own pixel functional —
  // there is no cell aboard for a broken counter-phase wall to lose.
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(array_.cols()) *
                                     static_cast<std::size_t>(array_.rows()),
                                 0);
  for (int r = 0; r < array_.rows(); ++r)
    for (int c = 0; c < array_.cols(); ++c)
      mask[static_cast<std::size_t>(r) * static_cast<std::size_t>(array_.cols()) +
           static_cast<std::size_t>(c)] =
          defects_.state({c, r}) == chip::PixelState::kOk ? 0 : 1;
  return mask;
}

std::vector<ControlEvent> Supervisor::preflight() {
  std::vector<ControlEvent> events;
  for (Cage& c : cages_) {
    if (!replanner_.enters_blocked_ahead(c.cage_id, 0, config_.lookahead)) continue;
    if (replanner_.replan(c.cage_id, c.goal, 0))
      events.push_back({0, EventKind::kRerouted, c.cage_id,
                        replanner_.position_at(c.cage_id, 0)});
  }
  return events;
}

std::vector<ControlEvent> Supervisor::step(int t, const OccupancyTracker& tracker,
                                           const std::vector<sensor::Detection>& detections,
                                           const TrackUpdate& update,
                                           const chip::CageController& cages,
                                           const std::vector<int>& stalled) {
  std::vector<ControlEvent> events;
  const auto emit = [&](EventKind kind, const Cage& c) {
    events.push_back({t, kind, c.cage_id, cages.site(c.cage_id)});
  };

  // Stall streak and replan-backoff bookkeeping (the engine reports this
  // tick's separation clashes).
  for (Cage& c : cages_) {
    const bool hit =
        std::find(stalled.begin(), stalled.end(), c.cage_id) != stalled.end();
    c.stall_streak = hit ? c.stall_streak + 1 : 0;
    if (c.replan_cooldown > 0) --c.replan_cooldown;
  }
  // Failed attempts start a backoff so a temporarily unroutable cage does
  // not pay a full time-expanded search every tick.
  // A rescuing cage falls back to the ring-0 mask inside the same attempt:
  // the fallback must not be starved by the cooldown its own failed strict
  // attempt just set (a cage recaptured on a ring-defective site would
  // otherwise livelock — strict replan fails, sets the cooldown, and the
  // relaxed retry is throttled by it forever).
  const auto try_replan = [&](Cage& c, GridCoord target) {
    if (c.replan_cooldown > 0) return false;
    if (replanner_.replan(c.cage_id, target, t)) return true;
    if (c.rescue && replanner_.replan(c.cage_id, target, t, relaxed_blocked()))
      return true;
    c.replan_cooldown = config_.replan_backoff;
    return false;
  };
  // Rescue legs route against the ring-0 mask: an empty (or dragging) rescue
  // cage may cross sites whose own pixel works even though the ring does not.
  // Checked without a cooldown of its own — it runs as the same-tick fallback
  // of a failed strict attempt, whose backoff already throttles the pair.
  const auto try_replan_relaxed = [&](Cage& c, GridCoord target) {
    return replanner_.replan(c.cage_id, target, t, relaxed_blocked());
  };

  // Confirmed tracker transitions.
  for (const TrackChange& change : update.changes) {
    const auto it =
        std::find_if(cages_.begin(), cages_.end(),
                     [&](const Cage& c) { return c.cage_id == change.cage_id; });
    if (it == cages_.end()) continue;  // tracked but unsupervised cage
    Cage& c = *it;
    if (change.state == TrackState::kLost && c.mode != CageMode::kPaused) {
      // Pause the tow: freeze the committed path at the current tick so the
      // cage holds position (and stays a correct reservation for others).
      replanner_.park(c.cage_id, t);
      c.mode = CageMode::kPaused;
      c.recapture_wait = 0;
      emit(EventKind::kCellLost, c);
    } else if (change.state == TrackState::kOccupied &&
               (c.mode == CageMode::kRecapturing || c.mode == CageMode::kPaused)) {
      // Recapture confirmed — or a paused cage's own cell re-appeared in the
      // association gate (a transient dropout, not a real loss): either way
      // the cage holds a cell again, so head back to the goal.
      emit(EventKind::kCellRecaptured, c);
      if (try_replan(c, c.goal)) {
        c.mode = CageMode::kEnRoute;
        emit(EventKind::kRerouted, c);
      } else if (c.rescue && try_replan_relaxed(c, c.goal)) {
        // Drag leg: tow the recaptured cell back across the defect boundary
        // (the rescue flag stays up until the cage reaches a normal site).
        c.mode = CageMode::kEnRoute;
        emit(EventKind::kRerouted, c);
      } else {
        // No route right now: hold the cell here and retry from the parked
        // branch below on subsequent ticks.
        replanner_.park(c.cage_id, t);
        c.mode = CageMode::kEnRoute;
      }
    }
  }

  for (Cage& c : cages_) {
    const GridCoord here = cages.site(c.cage_id);

    // A rescue ends when the drag-back leg reaches a normally-usable site —
    // the dragged cell is back behind a full counter-phase wall. Outbound
    // (kRecapturing) and hunting (kPaused) legs keep the flag: they start on
    // normal sites and still need the relaxed mask to enter the pocket.
    if (c.rescue && c.mode == CageMode::kEnRoute &&
        !replanner_.config().is_blocked(here))
      c.rescue = false;

    if (c.mode == CageMode::kPaused) {
      // Hunt for a credible stray detection near the cage: the escaped cell.
      const double reach =
          static_cast<double>(config_.recapture_search_pitches) * array_.pitch();
      const Vec2 center = array_.center(here);
      double best_d = std::numeric_limits<double>::infinity();
      int best = -1;
      for (const std::size_t d : update.unmatched_detections) {
        const Vec2 p = detections[d].position;
        if (!credible_fix(p)) continue;
        const double dist = (p - center).norm();
        if (dist <= reach && dist < best_d) {
          best_d = dist;
          best = static_cast<int>(d);
        }
      }
      if (best >= 0) {
        const Vec2 fix = detections[static_cast<std::size_t>(best)].position;
        const auto site = capture_site_for(fix);
        // With rescue enabled, a routable site whose basin cannot reach the
        // cell is not worth parking at; without it, keep the legacy attempt
        // (the cage waits out its patience and re-hunts).
        const bool worth_trying =
            site.has_value() &&
            (!config_.rescue || (array_.center(*site) - fix).norm() <= capture_radius_);
        bool started = false;
        if (worth_trying && try_replan(c, *site)) {
          c.mode = CageMode::kRecapturing;
          c.recapture_site = *site;
          c.recapture_wait = 0;
          emit(EventKind::kRecaptureStarted, c);
          started = true;
        }
        if (!started && config_.rescue) {
          // The cell sits in a fully blocked neighborhood (or the boundary
          // approach is unroutable): park an adjacent cage on a ring-
          // defective site whose own pixel still traps, via the ring-0 mask.
          const auto rsite = capture_site_relaxed(fix);
          if (rsite.has_value() && try_replan_relaxed(c, *rsite)) {
            c.mode = CageMode::kRecapturing;
            c.recapture_site = *rsite;
            c.recapture_wait = 0;
            if (!c.rescue) emit(EventKind::kRescueStarted, c);
            c.rescue = true;
            emit(EventKind::kRecaptureStarted, c);
          }
        }
      }
      continue;
    }

    if (c.mode == CageMode::kRecapturing && here == c.recapture_site) {
      // Waiting for the trap to pull the cell in; a stale fix (the cell
      // drifted or was phantom) sends us back to the hunt. The explicit
      // failure event is the health monitor's strike signal: repeated
      // capture failures at one site indict that site's electrode.
      if (++c.recapture_wait > config_.recapture_patience) {
        replanner_.park(c.cage_id, t);
        c.mode = CageMode::kPaused;
        emit(EventKind::kRecaptureFailed, c);
      }
    }

    if (c.mode == CageMode::kEnRoute && here == c.goal &&
        tracker.state(c.cage_id) == TrackState::kOccupied) {
      c.mode = CageMode::kDelivered;
      emit(EventKind::kDelivered, c);
      continue;
    }

    if (c.mode == CageMode::kEnRoute || c.mode == CageMode::kRecapturing) {
      const GridCoord target =
          c.mode == CageMode::kRecapturing ? c.recapture_site : c.goal;
      // A path that ended short of its target (failed earlier replan, parked
      // recovery) is retried every tick until the router finds a way — this
      // applies to recapture legs too, or a blocked recapture would hang.
      if (replanner_.parked_after(c.cage_id, t) && !(here == target)) {
        if (try_replan(c, target)) {
          emit(EventKind::kRerouted, c);
        } else if (c.rescue && try_replan_relaxed(c, target)) {
          emit(EventKind::kRerouted, c);
        }
      }
      // Defect lookahead: re-route before the plan enters a blocked site.
      // Rescue legs are exempt — entering the blocked region is the point.
      if (!c.rescue &&
          replanner_.enters_blocked_ahead(c.cage_id, t, config_.lookahead)) {
        if (try_replan(c, target)) {
          emit(EventKind::kRerouted, c);
        } else {
          replanner_.park(c.cage_id, t);  // wait; retried via the parked branch
        }
      }
      // Congestion: a neighbor deviated from plan and keeps blocking us.
      if (c.stall_streak >= config_.stall_replan_after) {
        emit(EventKind::kCongestionStall, c);
        if (try_replan(c, target) ||
            (c.rescue && try_replan_relaxed(c, target)))
          emit(EventKind::kRerouted, c);
        c.stall_streak = 0;
      }
    }
  }
  return events;
}

}  // namespace biochip::control
