#pragma once
/// \file replanner.hpp
/// \brief Online route maintenance for the closed-loop supervisor.
///
/// The replanner owns the committed multi-cage plan as absolute-time paths
/// (waypoint t = position at supervisory tick t; paths park at their last
/// waypoint) and keeps it consistent with reality tick by tick:
///  * `hold` re-times a path when its cage stalled for one step (the rest of
///    the plan survives, one step later);
///  * `park` freezes a cage in place (a paused tow);
///  * `replan` routes one cage to a new target through the reservation table
///    of every other committed path (`cad::route_astar_reserved`), honoring
///    the blocked-site mask (defective sites) baked into the route config.
/// The invariant the engine relies on: after each tick's bookkeeping,
/// `position_at(id, t)` equals the cage's physical site.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cad/route.hpp"
#include "common/geometry.hpp"

namespace biochip::control {

class Replanner {
 public:
  /// `config` is used for every replan; bake the defect blocked mask in here.
  explicit Replanner(cad::RouteConfig config);

  const cad::RouteConfig& config() const { return config_; }

  /// Replace the blocked-site mask mid-episode (runtime fault injection /
  /// health quarantine grew the defect state). Committed paths are left
  /// untouched — the supervisor's defect lookahead reroutes them.
  void set_blocked(std::vector<std::uint8_t> blocked);

  /// Install the committed plan (absolute time frame, t = 0 = episode start).
  void commit(std::vector<cad::RoutedPath> paths);
  const std::vector<cad::RoutedPath>& paths() const { return paths_; }
  bool has_path(int cage_id) const;

  /// Add one committed path mid-episode (a cage admitted by a cross-chamber
  /// handoff). The path must already be in the absolute time frame and must
  /// not collide with an existing id.
  void add_path(cad::RoutedPath path);

  /// Drop a cage's committed path (the cage left this chamber). Its
  /// reservation disappears with it.
  void remove_path(int cage_id);

  /// Position of a cage's committed path at tick t (parks at the end).
  GridCoord position_at(int cage_id, int t) const;
  /// True when the path never moves again after tick t.
  bool parked_after(int cage_id, int t) const;
  /// Last tick at which any committed path still moves.
  int horizon() const;

  /// Drop waypoint history older than tick t-1 from every committed path
  /// (each path's `start` advances to compensate, so `position_at(s)` is
  /// unchanged for every s >= t-1). Streaming drivers call this once per
  /// tick to keep an indefinite run's plan memory O(horizon) instead of
  /// O(elapsed ticks); episode drivers never need to.
  void compact(int t);

  /// Re-time a stalled cage: insert a one-step hold at tick t (the cage kept
  /// its previous site; the remaining plan shifts one step later).
  void hold(int cage_id, int t);

  /// Freeze a cage at its tick-t position (pause tow); drops the rest of its
  /// committed path.
  void park(int cage_id, int t);

  /// Re-route one cage from its tick-`t_now` position to `to`, against the
  /// reservation table of every other committed path. On success the cage's
  /// path becomes [old positions up to t_now-1] + [new route]; returns false
  /// (path untouched) when the router finds no conflict-free route.
  bool replan(int cage_id, GridCoord to, int t_now);

  /// `replan` against an override blocked mask instead of the committed one
  /// (rescue maneuvers route an empty cage through ring-defective sites).
  /// Reservations of every other committed path still apply.
  bool replan(int cage_id, GridCoord to, int t_now,
              const std::vector<std::uint8_t>& blocked_override);

  /// True when any of the path steps in (t, t + lookahead] enters a blocked
  /// site — the defect lookahead trigger.
  bool enters_blocked_ahead(int cage_id, int t, int lookahead) const;

  /// Total successful replans (report bookkeeping).
  std::size_t replans() const { return replans_; }

 private:
  cad::RoutedPath& path(int cage_id);
  const cad::RoutedPath& path(int cage_id) const;

  cad::RouteConfig config_;
  std::vector<cad::RoutedPath> paths_;
  std::size_t replans_ = 0;
};

}  // namespace biochip::control
