#include "control/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "core/threadpool.hpp"
#include "obs/fold.hpp"
#include "obs/obs.hpp"

namespace biochip::control {

double StreamingReport::cells_per_hour(double site_period) const {
  const double hours = static_cast<double>(ticks) * site_period / 3600.0;
  return hours > 0.0 ? static_cast<double>(delivered) / hours : 0.0;
}

int StreamingReport::latency_quantile(double q) const {
  std::uint64_t total = 0;
  for (std::uint64_t v : latency_hist) total += v;
  if (total == 0) return -1;
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  target = std::clamp<std::uint64_t>(target, 1, total);
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < latency_hist.size(); ++k) {
    cum += latency_hist[k];
    if (cum >= target) return static_cast<int>(k);
  }
  return static_cast<int>(latency_hist.size()) - 1;
}

std::uint64_t count_events(const StreamingReport& report, EventKind kind) {
  std::uint64_t n = 0;
  for (const std::vector<std::uint64_t>& chamber : report.event_counts)
    n += chamber[static_cast<std::size_t>(kind)];
  return n;
}

std::size_t sample_arrivals(const Rng& arrivals_base, int inlet, int tick,
                            double rate, const std::vector<double>& type_weights,
                            std::vector<int>& types_out) {
  types_out.clear();
  if (rate <= 0.0) return 0;
  double total = 0.0;
  for (double w : type_weights) total += w;
  Rng a = arrivals_base.fork(static_cast<std::uint64_t>(inlet))
              .fork(static_cast<std::uint64_t>(tick));
  const std::uint64_t n = a.poisson(rate);
  for (std::uint64_t k = 0; k < n; ++k) {
    const double u = a.uniform() * total;
    double cum = 0.0;
    int type = static_cast<int>(type_weights.size()) - 1;
    for (std::size_t w = 0; w < type_weights.size(); ++w) {
      cum += type_weights[w];
      if (u < cum) {
        type = static_cast<int>(w);
        break;
      }
    }
    types_out.push_back(type);
  }
  return types_out.size();
}

StreamingService::StreamingService(const fluidic::ChamberNetwork& network,
                                   StreamingConfig config)
    : network_(network), config_(std::move(config)) {
  const std::size_t n_chambers = network_.chamber_count();
  const std::size_t n_inlets = network_.inlet_count();
  BIOCHIP_REQUIRE(n_chambers >= 1, "streaming needs chambers");
  BIOCHIP_REQUIRE(n_inlets >= 1, "streaming needs at least one inlet");
  BIOCHIP_REQUIRE(config_.control.closed_loop,
                  "streaming requires the closed loop (deliveries are "
                  "confirmed by supervision)");
  BIOCHIP_REQUIRE(config_.site_period > 0.0, "site period must be positive");
  BIOCHIP_REQUIRE(config_.ticks >= 1, "service horizon must be >= 1 tick");
  BIOCHIP_REQUIRE(config_.arrival_rates.size() == n_inlets,
                  "one arrival rate per network inlet");
  for (double r : config_.arrival_rates)
    BIOCHIP_REQUIRE(r >= 0.0, "arrival rates must be non-negative");
  BIOCHIP_REQUIRE(!config_.type_weights.empty() &&
                      config_.type_weights.size() == config_.body_prototypes.size(),
                  "need one body prototype per cell-type weight");
  double weight_sum = 0.0;
  for (double w : config_.type_weights) {
    BIOCHIP_REQUIRE(w >= 0.0, "type weights must be non-negative");
    weight_sum += w;
  }
  BIOCHIP_REQUIRE(weight_sum > 0.0, "type weights must not all be zero");
  BIOCHIP_REQUIRE(config_.goal_sites.size() == n_chambers,
                  "one goal-site list per network chamber");
  for (std::size_t c = 0; c < n_chambers; ++c) {
    const fluidic::ChamberSite& site = network_.chamber(static_cast<int>(c));
    for (const GridCoord& g : config_.goal_sites[c])
      BIOCHIP_REQUIRE(g.col >= 0 && g.col < site.cols && g.row >= 0 &&
                          g.row < site.rows,
                      "goal site outside its chamber site grid");
  }
  for (std::size_t i = 0; i < n_inlets; ++i)
    BIOCHIP_REQUIRE(
        !config_.goal_sites[static_cast<std::size_t>(
                                network_.inlet(static_cast<int>(i)).chamber)]
             .empty(),
        "every chamber with an inlet needs at least one goal site");
  BIOCHIP_REQUIRE(config_.service_deadline >= 0,
                  "service deadline must be non-negative");
  BIOCHIP_REQUIRE(config_.max_latency_bins >= 1,
                  "latency histogram needs at least one bin");
  // Streaming v1 runs intra-chamber service legs only — no transfer ports —
  // so a port fault could never be observed. Reject instead of ignoring.
  BIOCHIP_REQUIRE(config_.faults.rates.port_intermittent == 0.0 &&
                      config_.faults.rates.port_failed == 0.0,
                  "streaming supports chamber fault kinds only");
  for (const chip::FaultEvent& f : config_.faults.scripted)
    BIOCHIP_REQUIRE(f.kind != chip::FaultKind::kPortIntermittent &&
                        f.kind != chip::FaultKind::kPortFailed,
                    "streaming supports chamber fault kinds only");
}

namespace {

/// One admitted cell being serviced by a chamber.
struct InFlight {
  int cage_id = 0;
  int admit_tick = 0;    ///< tick of the admission (eviction deadline base)
  int arrival_tick = 0;  ///< tick it arrived at the inlet (latency base)
};

}  // namespace

StreamingReport StreamingService::run(std::vector<ChamberSetup>& chambers,
                                      Rng stream_base, core::ThreadPool* pool,
                                      std::size_t max_parts) {
  const std::size_t n_chambers = network_.chamber_count();
  const std::size_t n_inlets = network_.inlet_count();
  BIOCHIP_REQUIRE(chambers.size() == n_chambers,
                  "one ChamberSetup per network chamber");
  for (std::size_t c = 0; c < n_chambers; ++c) {
    const ChamberSetup& setup = chambers[c];
    BIOCHIP_REQUIRE(setup.cages != nullptr && setup.engine != nullptr &&
                        setup.imager != nullptr && setup.defects != nullptr &&
                        setup.bodies != nullptr,
                    "chamber setup is incomplete");
    const fluidic::ChamberSite& site = network_.chamber(static_cast<int>(c));
    BIOCHIP_REQUIRE(setup.cages->array().cols() == site.cols &&
                        setup.cages->array().rows() == site.rows,
                    "chamber world does not match the network site grid");
  }

  // The memory contract needs both recyclers: body/track/plan slots in the
  // runtime (`recycle_slots`) and cage ids in the controller.
  ControlConfig control = config_.control;
  control.recycle_slots = true;
  for (ChamberSetup& setup : chambers) setup.cages->set_recycle_ids(true);

  // Stream-space layout: fork(0) = arrival processes (keyed (inlet, tick) —
  // invariant to chamber count and worker count), fork(1) = fault schedule,
  // fork(2).fork(c) = chamber c's control stack.
  const Rng arrivals_base = stream_base.fork(0);
  std::vector<std::unique_ptr<ClosedLoopEngine>> engines;
  std::vector<std::unique_ptr<EpisodeRuntime>> runtimes;
  engines.reserve(n_chambers);
  runtimes.reserve(n_chambers);
  for (std::size_t c = 0; c < n_chambers; ++c) {
    ChamberSetup& setup = chambers[c];
    engines.push_back(std::make_unique<ClosedLoopEngine>(
        *setup.cages, *setup.engine, *setup.imager, *setup.defects,
        config_.site_period, control));
    // pool = nullptr inside the runtime: the chamber fan-out owns the pool.
    runtimes.push_back(std::make_unique<EpisodeRuntime>(
        *engines.back(), setup.goals, *setup.bodies, setup.cage_bodies,
        stream_base.fork(2).fork(static_cast<std::uint64_t>(c)), nullptr));
    BIOCHIP_REQUIRE(runtimes.back()->planned(),
                    "a streaming chamber failed its initial plan");
  }

  std::optional<chip::FaultInjector> injector;
  {
    const chip::FaultRates& r = config_.faults.rates;
    const bool any_rate = r.electrode_dead > 0.0 || r.electrode_stuck_cage > 0.0 ||
                          r.electrode_silent_dead > 0.0 ||
                          r.sensor_row_dropout > 0.0 || r.sensor_pixel_burst > 0.0;
    if (!config_.faults.scripted.empty() || any_rate) {
      std::vector<chip::ChamberShape> shapes;
      shapes.reserve(n_chambers);
      for (std::size_t c = 0; c < n_chambers; ++c) {
        const fluidic::ChamberSite& site = network_.chamber(static_cast<int>(c));
        shapes.push_back({site.cols, site.rows});
      }
      injector.emplace(config_.faults, std::move(shapes), network_.port_count(),
                       stream_base.fork(1));
    }
  }

  AdmissionController admission(config_.admission, n_inlets);
  std::vector<std::vector<InFlight>> in_flight(n_chambers);
  std::vector<std::size_t> next_goal(n_chambers, 0);
  std::vector<Aabb> bounds(n_chambers);
  for (std::size_t c = 0; c < n_chambers; ++c)
    bounds[c] = chambers[c].engine->integrator().options().bounds;

  StreamingReport report;
  report.latency_hist.assign(
      static_cast<std::size_t>(config_.max_latency_bins) + 1, 0);
  report.event_counts.assign(n_chambers,
                             std::vector<std::uint64_t>(kEventKindCount, 0));

  // ---- telemetry (optional). Every counting-plane fold below runs in a
  // serial driver section on report-identical state, so attaching an
  // observer cannot perturb the bitwise serial-vs-pooled contract; the
  // timing plane (trace spans) is wall-clock and explicitly exempt.
  obs::MetricsRegistry* reg = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::MetricId latency_id, delivered_id, evicted_id;
  const core::PoolStats pool_base =
      pool != nullptr ? pool->stats() : core::PoolStats{};
  if (obs_ != nullptr && obs_->enabled()) {
    reg = &obs_->metrics();
    trace = obs_->trace();
    for (std::size_t c = 0; c < n_chambers; ++c)
      runtimes[c]->set_trace(trace, static_cast<int>(c));
    // Pre-register everything (all event kinds × chambers included) so the
    // snapshot shape is identical from the first tick onward, whether or
    // not a given kind ever fires.
    delivered_id = reg->counter("service.delivered");
    evicted_id = reg->counter("service.evicted");
    std::vector<std::int64_t> bounds;
    for (std::int64_t b = 1; b < config_.max_latency_bins; b *= 2)
      bounds.push_back(b);
    bounds.push_back(config_.max_latency_bins);
    latency_id = reg->histogram("service.latency_ticks", std::move(bounds));
    fold_admission(*reg, admission.stats());
    for (std::size_t i = 0; i < n_inlets; ++i)
      reg->gauge("admission.queue_depth", static_cast<int>(i));
    for (std::size_t c = 0; c < n_chambers; ++c) {
      reg->gauge("service.in_flight", static_cast<int>(c));
      reg->gauge("service.replans", static_cast<int>(c));
      fold_health(*reg, static_cast<int>(c), runtimes[c]->health_state());
      for (std::size_t k = 0; k < kEventKindCount; ++k)
        event_metric(*reg, static_cast<int>(c), static_cast<EventKind>(k));
    }
    reg->gauge("service.frames_sensed");
    reg->gauge("service.resident_bodies");
    reg->gauge("service.cage_slots");
    reg->counter("service.elided_ticks");
    reg->counter("service.faults_injected");
    reg->gauge("service.peak_in_flight");
    reg->gauge("service.peak_resident_bodies");
    reg->gauge("service.peak_cage_slots");
    fold_pool(*reg, core::PoolStats{});
  }

  std::vector<int> types;  // per-inlet arrival scratch, reused every tick
  for (int t = 1; t <= config_.ticks; ++t) {
    obs::PhaseTicker phase(trace, /*lane=*/-1, t);
    phase.begin("faults");
    // ---- runtime faults, serial before the fan-out (chamber kinds only;
    // port kinds were rejected at construction).
    if (injector.has_value()) {
      for (const chip::FaultEvent& f : injector->tick(t)) {
        switch (f.kind) {
          case chip::FaultKind::kElectrodeDead:
          case chip::FaultKind::kElectrodeStuckCage:
          case chip::FaultKind::kElectrodeSilentDead:
            runtimes[static_cast<std::size_t>(f.chamber)]->apply_electrode_fault(
                t, f.site, f.kind);
            break;
          case chip::FaultKind::kSensorRowDropout:
            runtimes[static_cast<std::size_t>(f.chamber)]->begin_sensor_dropout(
                t, f.site.row, f.duration);
            break;
          case chip::FaultKind::kSensorPixelBurst:
            runtimes[static_cast<std::size_t>(f.chamber)]->begin_sensor_burst(
                t, f.site, config_.faults.burst_tile, f.duration);
            break;
          case chip::FaultKind::kPortIntermittent:
          case chip::FaultKind::kPortFailed:
            break;  // unreachable: rejected at construction
        }
      }
    }

    // ---- arrivals, serial in ascending inlet order. Shedding happens here,
    // at the watermark — overload degrades the shed fraction, never memory.
    phase.begin("arrivals");
    for (std::size_t i = 0; i < n_inlets; ++i) {
      sample_arrivals(arrivals_base, static_cast<int>(i), t,
                      config_.arrival_rates[i], config_.type_weights, types);
      const fluidic::InletPort& inlet = network_.inlet(static_cast<int>(i));
      for (const int type : types)
        if (!admission.offer(static_cast<int>(i), t, type))
          runtimes[static_cast<std::size_t>(inlet.chamber)]->record_event(
              {t, EventKind::kAdmissionShed, -1, inlet.site});
    }

    // ---- idle-chamber elision, decided serially: an empty chamber (no
    // cage, no goal) has nothing to actuate, integrate or supervise; the
    // watchdog still observes (EpisodeRuntime::idle_tick).
    std::vector<std::uint8_t> elide(n_chambers, 0);
    if (config_.elide_idle_chambers) {
      for (std::size_t c = 0; c < n_chambers; ++c)
        if (runtimes[c]->active_goal_count() == 0 &&
            chambers[c].cages->cage_count() == 0) {
          elide[c] = 1;
          ++report.elided_chamber_ticks;
        }
    }

    // ---- barrier-synchronized chamber ticks (disjoint worlds + streams).
    phase.begin("chambers");
    const auto step = [&](std::size_t c) {
      if (elide[c]) runtimes[c]->idle_tick(t);
      else runtimes[c]->tick(t);
    };
    if (pool != nullptr) {
      pool->parallel_for(
          0, n_chambers,
          [&](std::size_t cb, std::size_t ce) {
            for (std::size_t c = cb; c < ce; ++c) step(c);
          },
          max_parts);
    } else {
      for (std::size_t c = 0; c < n_chambers; ++c) step(c);
    }

    // ---- harvest delivered cells (before admission, so the freed quota and
    // goal site are reusable the same tick), then evict deadline breakers —
    // a wedged delivery frees its quota explicitly instead of livelocking
    // the chamber shut.
    phase.begin("harvest");
    for (std::size_t c = 0; c < n_chambers; ++c) {
      EpisodeRuntime& rt = *runtimes[c];
      std::vector<InFlight>& fl = in_flight[c];
      for (std::size_t k = 0; k < fl.size();) {
        if (rt.supervises(fl[k].cage_id) &&
            rt.mode(fl[k].cage_id) == CageMode::kDelivered) {
          const int latency = t - fl[k].arrival_tick;
          const std::size_t bin = std::min<std::size_t>(
              static_cast<std::size_t>(std::max(latency, 0)),
              static_cast<std::size_t>(config_.max_latency_bins));
          ++report.latency_hist[bin];
          ++report.delivered;
          if (reg != nullptr) reg->observe(latency_id, latency);
          rt.release_cage(fl[k].cage_id);
          fl.erase(fl.begin() + static_cast<std::ptrdiff_t>(k));
        } else {
          ++k;
        }
      }
      if (config_.service_deadline > 0) {
        for (std::size_t k = 0; k < fl.size();) {
          if (t - fl[k].admit_tick >= config_.service_deadline) {
            rt.record_event({t, EventKind::kDeliveryFailed, fl[k].cage_id,
                             rt.site(fl[k].cage_id)});
            rt.release_cage(fl[k].cage_id);
            ++report.evicted;
            fl.erase(fl.begin() + static_cast<std::ptrdiff_t>(k));
          } else {
            ++k;
          }
        }
      }
    }

    // ---- admissions, serial in ascending inlet order: one head per inlet
    // per tick, gated by the health-scaled chamber quota and the chamber's
    // own admission test, rotating over the chamber's goal sites.
    phase.begin("admit");
    std::vector<int> admitted_this_tick(n_chambers, 0);
    for (std::size_t i = 0; i < n_inlets; ++i) {
      if (!admission.has_waiting(static_cast<int>(i))) continue;
      const fluidic::InletPort& inlet = network_.inlet(static_cast<int>(i));
      const std::size_t c = static_cast<std::size_t>(inlet.chamber);
      EpisodeRuntime& rt = *runtimes[c];
      const PendingCell head = admission.head(static_cast<int>(i));
      bool admitted = false;
      if (admitted_this_tick[c] < config_.admission.admissions_per_tick &&
          static_cast<int>(in_flight[c].size()) <
              admission.quota(rt.health_state()) &&
          rt.site_ok(inlet.site)) {
        const std::vector<GridCoord>& sites = config_.goal_sites[c];
        for (std::size_t g = 0; g < sites.size() && !admitted; ++g) {
          const std::size_t gi = (next_goal[c] + g) % sites.size();
          const GridCoord goal = sites[gi];
          if (goal == inlet.site || !rt.site_ok(goal)) continue;
          physics::ParticleBody cell =
              config_.body_prototypes[static_cast<std::size_t>(head.type)];
          cell.id = static_cast<int>(head.seq);
          cell.position = bounds[c].clamp(rt.trap_center(inlet.site));
          const std::optional<int> id = rt.admit_cage(inlet.site, goal, t, cell);
          if (id.has_value()) {
            in_flight[c].push_back({*id, t, head.arrival_tick});
            admission.admit_head(static_cast<int>(i));
            ++admitted_this_tick[c];
            next_goal[c] = (gi + 1) % sites.size();
            admitted = true;
          }
        }
      }
      // Head-of-line cell stays queued; its FIRST deferral is audited so the
      // trail shows backpressure without growing per wait-tick.
      if (!admitted && admission.defer_head(static_cast<int>(i)))
        rt.record_event({t, EventKind::kAdmissionDeferred, -1, inlet.site});
    }
    admission.tick_waiting();

    // ---- bounded-memory upkeep: drain the observed audit trail into
    // aggregate counters and drop committed-path history behind the clock.
    phase.begin("fold");
    for (std::size_t c = 0; c < n_chambers; ++c) {
      const std::vector<ControlEvent> drained =
          runtimes[c]->take_observed_events();
      for (const ControlEvent& e : drained)
        ++report.event_counts[c][static_cast<std::size_t>(e.kind)];
      if (reg != nullptr)
        fold_events(*reg, static_cast<int>(c), drained);
      runtimes[c]->compact_paths(t);
    }

    // ---- residency accounting (the gates the soak smoke test holds).
    std::size_t caged = 0, resident = 0, slots = 0;
    for (std::size_t c = 0; c < n_chambers; ++c) {
      caged += in_flight[c].size();
      resident += runtimes[c]->resident_bodies();
      slots += chambers[c].cages->slot_count();
    }
    report.peak_in_flight =
        std::max(report.peak_in_flight, caged + admission.total_queued());
    report.peak_resident_bodies = std::max(report.peak_resident_bodies, resident);
    report.peak_cage_slots = std::max(report.peak_cage_slots, slots);

    // ---- counting-plane folds: absolute sets of the same deterministic
    // totals the report carries, once per tick from this serial section.
    if (reg != nullptr) {
      fold_admission(*reg, admission.stats());
      reg->set_counter(delivered_id, report.delivered);
      reg->set_counter(evicted_id, report.evicted);
      for (std::size_t i = 0; i < n_inlets; ++i)
        reg->set(reg->gauge("admission.queue_depth", static_cast<int>(i)),
                 static_cast<std::int64_t>(
                     admission.queue_depth(static_cast<int>(i))));
      std::size_t frames = 0;
      for (std::size_t c = 0; c < n_chambers; ++c) {
        reg->set(reg->gauge("service.in_flight", static_cast<int>(c)),
                 static_cast<std::int64_t>(in_flight[c].size()));
        reg->set(reg->gauge("service.replans", static_cast<int>(c)),
                 static_cast<std::int64_t>(runtimes[c]->replans()));
        fold_health(*reg, static_cast<int>(c), runtimes[c]->health_state());
        frames += runtimes[c]->frames_sensed();
      }
      reg->set(reg->gauge("service.frames_sensed"),
               static_cast<std::int64_t>(frames));
      reg->set(reg->gauge("service.resident_bodies"),
               static_cast<std::int64_t>(resident));
      reg->set(reg->gauge("service.cage_slots"),
               static_cast<std::int64_t>(slots));
      reg->set_counter(reg->counter("service.elided_ticks"),
                       report.elided_chamber_ticks);
      reg->set_counter(reg->counter("service.faults_injected"),
                       injector.has_value() ? injector->injected() : 0);
      reg->set(reg->gauge("service.peak_in_flight"),
               static_cast<std::int64_t>(report.peak_in_flight));
      reg->set(reg->gauge("service.peak_resident_bodies"),
               static_cast<std::int64_t>(report.peak_resident_bodies));
      reg->set(reg->gauge("service.peak_cage_slots"),
               static_cast<std::int64_t>(report.peak_cage_slots));
      // Execution plane: this run's pool traffic so far (serial runs fold 0).
      fold_pool(*reg, pool != nullptr ? pool->stats().since(pool_base)
                                      : core::PoolStats{});
      obs_->snapshot_tick(t);
    }
  }

  report.ticks = config_.ticks;
  for (std::size_t c = 0; c < n_chambers; ++c) {
    // Final drain: no further health observation will run, so take all.
    const std::vector<ControlEvent> drained =
        runtimes[c]->take_observed_events(true);
    for (const ControlEvent& e : drained)
      ++report.event_counts[c][static_cast<std::size_t>(e.kind)];
    if (reg != nullptr) fold_events(*reg, static_cast<int>(c), drained);
    report.frames_sensed += runtimes[c]->frames_sensed();
    report.health.push_back(runtimes[c]->health_state());
    report.in_flight_end += in_flight[c].size();
  }
  report.admission = admission.stats();
  report.queued_end = admission.total_queued();
  report.injected_faults = injector.has_value() ? injector->injected() : 0;
  if (reg != nullptr) {
    fold_admission(*reg, report.admission);
    reg->set(reg->gauge("service.frames_sensed"),
             static_cast<std::int64_t>(report.frames_sensed));
    reg->set_counter(reg->counter("service.faults_injected"),
                     report.injected_faults);
  }
  return report;
}

}  // namespace biochip::control
