#pragma once
/// \file supervisor.hpp
/// \brief Closed-loop policy: react to tracker state and plan deviations.
///
/// The supervisor is pure policy — no physics, no sensing. Each tick it
/// consumes the tracker's confirmed state changes, the unmatched (stray)
/// detections and the engine's stall report, and mutates the replanner:
///  * cell lost from a cage → pause the tow (park) and, once a credible
///    stray detection appears nearby, route the cage to the nearest usable
///    site to that fix (recapture maneuver);
///  * cell recaptured → route the cage back to its delivery goal;
///  * committed path about to enter a defective site → re-route online
///    around the blocked mask;
///  * repeated actuation stalls (congestion from a deviating neighbor) →
///    re-route through the current reservation table.
/// Every reaction is recorded as a `ControlEvent`, so episodes are
/// auditable and failures are explicit, never silent.

#include <cstdint>
#include <optional>
#include <vector>

#include "chip/cage.hpp"
#include "chip/defects.hpp"
#include "chip/electrode_array.hpp"
#include "control/config.hpp"
#include "control/events.hpp"
#include "control/replanner.hpp"
#include "control/tracker.hpp"
#include "sensor/detect.hpp"

namespace biochip::control {

/// Supervision mode of one goal cage.
enum class CageMode : std::uint8_t {
  kEnRoute,      ///< following its committed path to the delivery goal
  kPaused,       ///< tow paused after a confirmed loss; waiting for a fix
  kRecapturing,  ///< routed toward a stray detection to re-trap its cell
  kDelivered,    ///< at the goal with a confirmed cell
};

class Supervisor {
 public:
  /// `capture_radius` [m] is the trap basin's reach — the supervisor uses it
  /// to judge whether a candidate capture site can actually pull a stray
  /// cell in (a trap exerts zero force beyond it).
  Supervisor(const ControlConfig& config, const chip::ElectrodeArray& array,
             const chip::DefectMap& defects, Replanner& replanner,
             double capture_radius);

  /// Register a cage with its delivery goal (its committed path must already
  /// be in the replanner). Legal mid-episode too — a cross-chamber handoff
  /// admits new cages into a running supervisor.
  void add_cage(int cage_id, GridCoord goal);

  /// Drop a cage from supervision (handed off to another chamber). The
  /// replanner path and tracker entry are the caller's to clean up.
  void remove_cage(int cage_id);
  bool supervises(int cage_id) const;

  CageMode mode(int cage_id) const;
  GridCoord goal(int cage_id) const;
  bool all_delivered() const;

  /// Re-assign a cage's delivery goal mid-episode (transfer escalation to an
  /// alternate port). The cage drops any recapture business and goes back
  /// en route; its parked path is replanned toward the new goal on the next
  /// tick by the standard parked-retry branch.
  void retarget(int cage_id, GridCoord goal);

  /// True while a cage runs a rescue maneuver (empty-cage traversal of
  /// ring-defective sites). The engine keeps the trap of a rescuing cage
  /// energized on any site whose own pixel is healthy.
  bool rescuing(int cage_id) const;

  /// Pre-episode defect check: re-route any cage whose committed path enters
  /// a blocked site within the lookahead of tick 0 (matters when the initial
  /// plan was defect-blind).
  std::vector<ControlEvent> preflight();

  /// One tick of policy, run after actuation + sensing + tracking at tick
  /// `t`. `update` is the tracker's output for this tick's frame,
  /// `detections` the frame's (defect-filtered) detections, `stalled` the
  /// cage ids whose actuation step clashed this tick. Emits events and
  /// updates the replanner; the engine actuates the revised plan from t+1.
  std::vector<ControlEvent> step(int t, const OccupancyTracker& tracker,
                                 const std::vector<sensor::Detection>& detections,
                                 const TrackUpdate& update,
                                 const chip::CageController& cages,
                                 const std::vector<int>& stalled);

 private:
  struct Cage {
    int cage_id = 0;
    GridCoord goal;
    CageMode mode = CageMode::kEnRoute;
    GridCoord recapture_site;
    int recapture_wait = 0;
    int stall_streak = 0;
    int replan_cooldown = 0;  ///< ticks left before another replan attempt
    bool rescue = false;      ///< rescue maneuver in progress (relaxed mask)
  };

  Cage& cage(int cage_id);
  const Cage& cage(int cage_id) const;
  /// Nearest routable site to a detection fix, or nullopt (deterministic:
  /// distance, then (row, col)).
  std::optional<GridCoord> capture_site_for(Vec2 fix) const;
  /// True when the detection sits over a healthy pixel (stuck-cage phantoms
  /// and dead-pixel artifacts are rejected via the self-test defect map).
  bool credible_fix(Vec2 position) const;
  /// Rescue variant of `capture_site_for`: only requires the site's own
  /// pixel healthy (ring ignored) and its trap basin to reach the fix.
  std::optional<GridCoord> capture_site_relaxed(Vec2 fix) const;
  /// Ring-0 blocked mask (blocked iff the site's own pixel is defective) —
  /// what an empty rescue cage may traverse.
  std::vector<std::uint8_t> relaxed_blocked() const;

  const ControlConfig& config_;
  const chip::ElectrodeArray& array_;
  const chip::DefectMap& defects_;
  Replanner& replanner_;
  double capture_radius_;
  std::vector<Cage> cages_;  ///< sorted by cage_id
};

}  // namespace biochip::control
