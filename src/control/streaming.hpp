#pragma once
/// \file streaming.hpp
/// \brief Open-system streaming mode: continuous arrivals, admission control,
/// backpressure, bounded-memory indefinite operation.
///
/// The paper's chip is a cytometer front-end, not an episode machine: cells
/// keep flowing in while earlier ones are still being caged, towed and
/// delivered. `StreamingService` turns the orchestrated multi-chamber world
/// into that service. Each supervisory tick it
///
///  1. applies this tick's runtime faults (serial, `chip::FaultInjector`);
///  2. draws Poisson arrivals per `fluidic::InletPort` from counter-based
///     streams keyed (inlet, tick) — the arrival sequence depends only on
///     (seed, inlet id, tick), never on worker count, chamber count, or call
///     interleaving — and offers them to the `AdmissionController`, which
///     sheds past the queue-depth watermark (`kAdmissionShed`);
///  3. fans the per-chamber supervisory ticks over the worker pool
///     (barrier-synchronized, disjoint fork-stream spaces);
///  4. harvests delivered cages (time-in-chip into a fixed-bin latency
///     histogram, cage + body slot recycled), evicts cells past the service
///     deadline (`kDeliveryFailed` — an explicit failure, never a livelock);
///  5. admits queued heads under the per-chamber in-flight quota the
///     chamber's health rung scales down, rotating over the chamber's goal
///     sites (first deferral of a head audits `kAdmissionDeferred`);
///  6. drains observed audit events into bounded per-chamber counters and
///     compacts committed-path history (`Replanner::compact`).
///
/// Memory contract: with `ControlConfig::recycle_slots` (forced on here) and
/// cage-id recycling, steady state allocates nothing per arrival — body
/// slots, cage slots, paths, tracks and supervision records are all reused,
/// the audit trail is drained every tick, and the latency histogram is fixed
/// size. Peak residency is bounded by quota × chambers + capacity × inlets,
/// independent of how long the service runs or how hard it is overloaded.
///
/// Determinism contract: identical to the orchestrator's — arrivals,
/// admission and harvest run serially in ascending (inlet | chamber) order
/// between barrier-synchronized chamber ticks, all randomness is
/// counter-keyed, so a run is **bitwise identical** for any worker count and
/// chunking (`max_parts = 1` = serial reference).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chip/fault_injector.hpp"
#include "common/rng.hpp"
#include "control/admission.hpp"
#include "control/config.hpp"
#include "control/engine.hpp"
#include "control/health.hpp"
#include "control/orchestrator.hpp"
#include "fluidic/chamber_network.hpp"
#include "physics/dynamics.hpp"

namespace biochip::core {
class ThreadPool;
}
namespace biochip::obs {
class Observer;
}

namespace biochip::control {

struct StreamingConfig {
  /// Per-chamber control config. Streaming requires the closed loop
  /// (delivery is confirmed by supervision) and forces `recycle_slots` on.
  ControlConfig control;
  double site_period = 0.4;  ///< [s] per supervisory tick
  /// Service horizon in ticks. Memory does not scale with it — a 1M-tick
  /// soak holds the same peak residency as a 2k-tick smoke run.
  int ticks = 2000;
  /// Mean Poisson arrivals per tick, one entry per network inlet.
  std::vector<double> arrival_rates;
  /// Cell-type mix: `type_weights[k]` selects `body_prototypes[k]`
  /// (normalized internally; same length required).
  std::vector<double> type_weights;
  /// One template body per cell type (radius / density / dep_prefactor set
  /// by the caller, e.g. from `cell::library` via ParticleSpec). Position
  /// and id are overwritten at admission.
  std::vector<physics::ParticleBody> body_prototypes;
  AdmissionConfig admission;
  /// Delivery sites per chamber; admissions rotate over them (defect-blocked
  /// sites are skipped). Every chamber with an inlet needs at least one.
  std::vector<std::vector<GridCoord>> goal_sites;
  /// Ticks an admitted cell may stay in flight before it is evicted with an
  /// explicit `kDeliveryFailed` (frees its quota — a wedged delivery can
  /// never livelock the chamber shut). 0 = never evict.
  int service_deadline = 400;
  /// Runtime fault schedule (chamber kinds only — streaming v1 runs no
  /// transfer legs, so port kinds are rejected at construction).
  chip::FaultScheduleConfig faults;
  /// Skip full ticks of chambers with no cage and no queued admission work
  /// (the watchdog still observes — same contract as the orchestrator).
  bool elide_idle_chambers = false;
  /// Latency histogram bins (1 tick each) + one overflow bin.
  int max_latency_bins = 512;
};

/// Bounded aggregate accounting of one streaming run. Everything is a
/// counter or a fixed-size histogram — nothing grows with the horizon — and
/// every member is comparable, so the serial-vs-pooled bitwise contract is
/// checked with a single `==`.
struct StreamingReport {
  int ticks = 0;
  AdmissionStats admission;
  std::uint64_t delivered = 0;  ///< harvested with a confirmed cell at a goal
  std::uint64_t evicted = 0;    ///< failed on the service deadline
  /// `latency_hist[k]` = deliveries with time-in-chip (arrival → harvest) of
  /// k ticks; the last bin collects >= max_latency_bins.
  std::vector<std::uint64_t> latency_hist;
  std::size_t peak_in_flight = 0;       ///< max queued + caged, any tick
  std::size_t peak_resident_bodies = 0; ///< max Σ body-array slots
  std::size_t peak_cage_slots = 0;      ///< max Σ cage-controller slots
  std::size_t frames_sensed = 0;        ///< CDS frames across all chambers
  /// `event_counts[c][k]` = events of `EventKind` k chamber c emitted.
  std::vector<std::vector<std::uint64_t>> event_counts;
  std::uint64_t injected_faults = 0;
  std::vector<HealthState> health;  ///< final rung per chamber
  std::size_t elided_chamber_ticks = 0;
  std::size_t in_flight_end = 0;  ///< still caged when the horizon ended
  std::size_t queued_end = 0;     ///< still queued at an inlet

  bool operator==(const StreamingReport&) const = default;

  /// Delivered-cell throughput for a tick period [s].
  double cells_per_hour(double site_period) const;
  /// Smallest latency [ticks] with cumulative delivered fraction >= q
  /// (q in (0, 1]); -1 when nothing was delivered. The overflow bin reports
  /// as `max_latency_bins`.
  int latency_quantile(double q) const;
};

/// Total events of one kind across all chambers of a streaming report.
std::uint64_t count_events(const StreamingReport& report, EventKind kind);

/// The arrival process, exposed for tests: arrivals at `inlet` on `tick`
/// drawn from `arrivals_base.fork(inlet).fork(tick)` — a pure function of
/// (stream, inlet, tick, rate, weights). Appends one type index per arrival
/// to `types_out` (cleared first) and returns the count.
std::size_t sample_arrivals(const Rng& arrivals_base, int inlet, int tick,
                            double rate, const std::vector<double>& type_weights,
                            std::vector<int>& types_out);

/// Drives the open-system streaming mode over a `fluidic::ChamberNetwork`
/// with declared inlets.
class StreamingService {
 public:
  StreamingService(const fluidic::ChamberNetwork& network, StreamingConfig config);

  const StreamingConfig& config() const { return config_; }
  const fluidic::ChamberNetwork& network() const { return network_; }

  /// Run the service for `config().ticks` supervisory ticks. `chambers[c]`
  /// is the world of network chamber c (normally empty of cages — arrivals
  /// populate it); cage-id recycling is switched on on every controller.
  /// Chamber ticks fan out over `pool` (null = serial) in at most
  /// `max_parts` chunks; reports are bitwise identical for any choice.
  StreamingReport run(std::vector<ChamberSetup>& chambers, Rng stream_base,
                      core::ThreadPool* pool, std::size_t max_parts = 0);

  /// Attach a telemetry observer for subsequent `run` calls (null = off).
  /// Counting-plane folds happen in the serial driver sections, so enabling
  /// telemetry never perturbs the report or the bitwise identity contract.
  void set_observer(obs::Observer* obs) { obs_ = obs; }

 private:
  const fluidic::ChamberNetwork& network_;
  StreamingConfig config_;
  obs::Observer* obs_ = nullptr;
};

}  // namespace biochip::control
