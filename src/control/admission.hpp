#pragma once
/// \file admission.hpp
/// \brief Open-system admission control: inlet queues, quotas, load shedding.
///
/// The paper's device is a service, not an episode: cells keep arriving at
/// the chip while earlier ones are still being towed. `AdmissionController`
/// is the global backpressure layer between the arrival process and the
/// per-chamber control stacks:
///
///  * each `fluidic::InletPort` owns a bounded FIFO of pending cells; an
///    arrival that finds the queue at its capacity watermark is **shed**
///    (`EventKind::kAdmissionShed`) — dropped to waste, explicitly, so 2×
///    overload degrades shed fraction and latency, never memory;
///  * the head of each queue is offered to its chamber once per tick, gated
///    by a per-chamber in-flight quota that the chamber's `HealthMonitor`
///    rung scales down (degraded chambers take half, quarantined chambers
///    none) and by the chamber runtime's own admission test
///    (`EpisodeRuntime::admit_cage`: port clear, unreserved, routable);
///  * a head that cannot be admitted is **deferred** in place — the first
///    deferral of each cell is audited (`kAdmissionDeferred`), later ones
///    are just queue wait, so the audit trail stays bounded per cell.
///
/// Everything is plain bookkeeping — no RNG, no wall clock — so admission
/// decisions preserve the serial-vs-pooled bitwise determinism contract.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "control/health.hpp"

namespace biochip::control {

struct AdmissionConfig {
  /// Queue-depth watermark per inlet: an arrival beyond this is shed.
  int queue_capacity = 8;
  /// Max in-flight (supervised) cells per healthy chamber.
  int chamber_quota = 4;
  /// Quota while the chamber is kDegraded (kQuarantined always admits 0).
  int degraded_quota = 2;
  /// Max admissions per chamber per tick (smooths admission bursts so one
  /// tick never floods a chamber's reservation table).
  int admissions_per_tick = 1;
};

/// One cell waiting at an inlet.
struct PendingCell {
  std::uint64_t seq = 0;  ///< global arrival number (monotone, never reused)
  int arrival_tick = 0;   ///< tick the cell arrived at the inlet
  int type = 0;           ///< index into the caller's cell-type mix
  bool deferred = false;  ///< already audited as kAdmissionDeferred
};

/// Aggregate admission accounting (bounded — no per-cell history).
struct AdmissionStats {
  std::uint64_t offered = 0;   ///< arrivals drawn from the arrival process
  std::uint64_t shed = 0;      ///< dropped at a full inlet queue
  std::uint64_t deferrals = 0; ///< first-time head deferrals (= audit events)
  std::uint64_t admitted = 0;  ///< cells caged by a chamber runtime
  std::uint64_t queue_wait_ticks = 0;  ///< total cell-ticks spent queued

  bool operator==(const AdmissionStats&) const = default;
};

class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, std::size_t n_inlets);

  const AdmissionConfig& config() const { return config_; }

  /// Offer one arrival to an inlet queue; false = shed (queue at capacity).
  bool offer(int inlet, int tick, int type);

  bool has_waiting(int inlet) const { return !queues_[check(inlet)].empty(); }
  const PendingCell& head(int inlet) const;
  /// Head admitted: remove it and book the admission.
  void admit_head(int inlet);
  /// Head could not be admitted this tick; true on its FIRST deferral (the
  /// caller then audits one kAdmissionDeferred event for this cell).
  bool defer_head(int inlet);

  /// Effective chamber quota for a health rung.
  int quota(HealthState state) const;

  std::size_t queue_depth(int inlet) const { return queues_[check(inlet)].size(); }
  std::size_t total_queued() const;
  /// Book one tick of wait for every queued cell (call once per tick).
  void tick_waiting();

  const AdmissionStats& stats() const { return stats_; }
  /// Next arrival number (also: total arrivals offered so far).
  std::uint64_t next_seq() const { return next_seq_; }

 private:
  std::size_t check(int inlet) const;

  AdmissionConfig config_;
  std::vector<std::deque<PendingCell>> queues_;
  AdmissionStats stats_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace biochip::control
