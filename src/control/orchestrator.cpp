#include "control/orchestrator.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "core/threadpool.hpp"

namespace biochip::control {

const char* to_string(TransferPhase phase) {
  switch (phase) {
    case TransferPhase::kTowingToPort: return "towing_to_port";
    case TransferPhase::kAwaitingAdmission: return "awaiting_admission";
    case TransferPhase::kInDestination: return "in_destination";
    case TransferPhase::kDelivered: return "delivered";
    case TransferPhase::kFailed: return "failed";
  }
  return "unknown";
}

Orchestrator::Orchestrator(const fluidic::ChamberNetwork& network,
                           OrchestratorConfig config)
    : network_(network), config_(std::move(config)) {
  BIOCHIP_REQUIRE(network_.chamber_count() >= 1, "orchestrator needs chambers");
  BIOCHIP_REQUIRE(config_.transfer_backoff >= 1, "transfer backoff must be >= 1");
}

namespace {

/// Mutable per-transfer arbitration state.
struct TransferState {
  TransferOutcome outcome;
  GridCoord port_from;  ///< port site in the source chamber
  GridCoord port_to;    ///< port site in the destination chamber
  int cooldown = 0;     ///< ticks until the next admission attempt
};

}  // namespace

OrchestratorReport Orchestrator::run(std::vector<ChamberSetup>& chambers,
                                     const std::vector<TransferGoal>& transfers,
                                     Rng stream_base, core::ThreadPool* pool,
                                     std::size_t max_parts) {
  const std::size_t n_chambers = network_.chamber_count();
  BIOCHIP_REQUIRE(chambers.size() == n_chambers,
                  "one ChamberSetup per network chamber");
  for (std::size_t c = 0; c < n_chambers; ++c) {
    const ChamberSetup& setup = chambers[c];
    BIOCHIP_REQUIRE(setup.cages != nullptr && setup.engine != nullptr &&
                        setup.imager != nullptr && setup.defects != nullptr &&
                        setup.bodies != nullptr,
                    "chamber setup is incomplete");
    const fluidic::ChamberSite& site = network_.chamber(static_cast<int>(c));
    BIOCHIP_REQUIRE(setup.cages->array().cols() == site.cols &&
                        setup.cages->array().rows() == site.rows,
                    "chamber world does not match the network site grid");
  }

  // Resolve every transfer against the topology and stage the per-chamber
  // goal lists: the source chamber's supervisor sees the port site as the
  // cage's in-chamber delivery goal.
  std::vector<TransferState> states(transfers.size());
  std::vector<std::vector<CageGoal>> chamber_goals(n_chambers);
  for (std::size_t c = 0; c < n_chambers; ++c) chamber_goals[c] = chambers[c].goals;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const TransferGoal& tr = transfers[i];
    BIOCHIP_REQUIRE(tr.from_chamber >= 0 &&
                        static_cast<std::size_t>(tr.from_chamber) < n_chambers &&
                        tr.to_chamber >= 0 &&
                        static_cast<std::size_t>(tr.to_chamber) < n_chambers,
                    "transfer names an unknown chamber");
    const auto port = network_.port_between(tr.from_chamber, tr.to_chamber);
    BIOCHIP_REQUIRE(port.has_value(), "no port connects the transfer's chambers");
    states[i].port_from = network_.port_site(*port, tr.from_chamber);
    states[i].port_to = network_.port_site(*port, tr.to_chamber);
    chamber_goals[static_cast<std::size_t>(tr.from_chamber)].push_back(
        {tr.cage_id, states[i].port_from});
  }

  // One control stack per chamber, on disjoint fork-stream spaces.
  std::vector<std::unique_ptr<ClosedLoopEngine>> engines;
  std::vector<std::unique_ptr<EpisodeRuntime>> runtimes;
  engines.reserve(n_chambers);
  runtimes.reserve(n_chambers);
  for (std::size_t c = 0; c < n_chambers; ++c) {
    ChamberSetup& setup = chambers[c];
    engines.push_back(std::make_unique<ClosedLoopEngine>(
        *setup.cages, *setup.engine, *setup.imager, *setup.defects,
        config_.site_period, config_.control));
    // pool = nullptr inside the runtime: the chamber fan-out owns the pool
    // (nested parallel_for would deadlock); per-body streams are
    // counter-based, so this changes nothing bitwise.
    runtimes.push_back(std::make_unique<EpisodeRuntime>(
        *engines.back(), chamber_goals[c], *setup.bodies, setup.cage_bodies,
        stream_base.fork(static_cast<std::uint64_t>(c)), nullptr));
  }

  OrchestratorReport report;
  report.transfers.resize(transfers.size());
  report.planned = std::all_of(runtimes.begin(), runtimes.end(),
                               [](const auto& r) { return r->planned(); });
  if (!report.planned) {
    // Same contract as the single-chamber engine: no episode, but complete
    // accounting — every chamber report is final, every transfer failed.
    // Transfers are accounted globally, so pull their port legs out of the
    // source chambers' books first (a failed-plan source already booked the
    // leg in its constructor; erase it from the finished report instead).
    for (const TransferGoal& tr : transfers) {
      EpisodeRuntime& src = *runtimes[static_cast<std::size_t>(tr.from_chamber)];
      if (src.planned()) src.drop_goal(tr.cage_id);
    }
    for (std::size_t c = 0; c < n_chambers; ++c)
      report.chambers.push_back(runtimes[c]->finish());
    for (const TransferGoal& tr : transfers) {
      if (runtimes[static_cast<std::size_t>(tr.from_chamber)]->planned()) continue;
      std::vector<int>& failed =
          report.chambers[static_cast<std::size_t>(tr.from_chamber)].failed_ids;
      failed.erase(std::remove(failed.begin(), failed.end(), tr.cage_id),
                   failed.end());
    }
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      states[i].outcome.phase = TransferPhase::kFailed;
      report.transfers[i] = states[i].outcome;
      report.failed_transfers.push_back(i);
    }
    return report;
  }

  // Global tick budget: the widest chamber budget plus slack per transfer
  // (a destination leg spans at most cols + rows sites, plus backoff room).
  int budget = config_.max_ticks;
  if (budget <= 0) {
    int base = 0;
    for (const auto& r : runtimes) base = std::max(base, r->budget());
    int slack = 0;
    for (const TransferGoal& tr : transfers) {
      const fluidic::ChamberSite& dest = network_.chamber(tr.to_chamber);
      slack += dest.cols + dest.rows + 8 * config_.transfer_backoff + 30;
    }
    budget = base + slack;
  }

  const bool closed = config_.control.closed_loop;
  const auto chamber_done = [&](std::size_t c, int t) {
    return closed ? runtimes[c]->all_delivered() : t >= runtimes[c]->horizon();
  };

  for (int t = 1; t <= budget; ++t) {
    report.ticks = t;

    // ---- barrier-synchronized chamber ticks (disjoint worlds + streams).
    if (pool != nullptr) {
      pool->parallel_for(
          0, n_chambers,
          [&](std::size_t cb, std::size_t ce) {
            for (std::size_t c = cb; c < ce; ++c) runtimes[c]->tick(t);
          },
          max_parts);
    } else {
      for (std::size_t c = 0; c < n_chambers; ++c) runtimes[c]->tick(t);
    }

    // ---- serial arbitration, ascending transfer order (deterministic).
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const TransferGoal& tr = transfers[i];
      TransferState& st = states[i];
      EpisodeRuntime& src = *runtimes[static_cast<std::size_t>(tr.from_chamber)];
      EpisodeRuntime& dst = *runtimes[static_cast<std::size_t>(tr.to_chamber)];

      if (st.outcome.phase == TransferPhase::kTowingToPort) {
        // Closed loop: the source supervisor confirms port delivery (cell
        // present by tracker hysteresis). Open loop: blind hand-off on the
        // ground-truth cage position, cell or no cell.
        const bool at_port =
            closed ? (src.supervises(tr.cage_id) &&
                      src.mode(tr.cage_id) == CageMode::kDelivered)
                   : (src.site(tr.cage_id) == st.port_from);
        if (at_port) {
          st.outcome.phase = TransferPhase::kAwaitingAdmission;
          src.record_event({t, EventKind::kTransferRequested, tr.cage_id, st.port_from});
          ++report.transfer_requests;
        }
      }

      if (st.outcome.phase == TransferPhase::kAwaitingAdmission) {
        // A defect-blocked port neighborhood can never hold the receiving
        // cage — and a defect-blocked final destination can never be routed
        // to: explicit permanent failure, not an infinite backoff.
        if (!dst.site_ok(st.port_to) || !dst.site_ok(tr.destination)) {
          st.outcome.phase = TransferPhase::kFailed;
          src.record_event({t, EventKind::kDeliveryFailed, tr.cage_id, st.port_from});
          src.drop_goal(tr.cage_id);  // accounted globally, not as a port leg
          continue;
        }
        if (st.cooldown > 0) {
          --st.cooldown;
          continue;
        }
        ++st.outcome.requests;
        // Stage the cell into the destination frame: the channel carries it
        // port-to-port, preserving its offset from the trap center (a cell
        // the source lost stays lost — open-loop hand-offs ship an offset
        // that no destination trap will hold).
        physics::ParticleBody cell = src.body_of(tr.cage_id);
        const Vec3 offset = cell.position - src.trap_center(st.port_from);
        const Aabb bounds =
            chambers[static_cast<std::size_t>(tr.to_chamber)].engine->integrator()
                .options().bounds;
        cell.position = bounds.clamp(dst.trap_center(st.port_to) + offset);
        const auto dest_id = dst.admit_cage(st.port_to, tr.destination, t, cell);
        if (!dest_id.has_value()) {
          ++st.outcome.denials;
          ++report.denials;
          st.cooldown = config_.transfer_backoff;
          src.record_event({t, EventKind::kTransferDenied, tr.cage_id, st.port_from});
          continue;
        }
        src.release_cage(tr.cage_id);
        st.outcome.phase = TransferPhase::kInDestination;
        st.outcome.dest_cage_id = *dest_id;
        st.outcome.handoff_tick = t;
        ++report.admissions;
      }

      if (st.outcome.phase == TransferPhase::kInDestination && closed &&
          dst.supervises(st.outcome.dest_cage_id) &&
          dst.mode(st.outcome.dest_cage_id) == CageMode::kDelivered) {
        st.outcome.phase = TransferPhase::kDelivered;
      }
    }

    // ---- global termination: every transfer terminal or in its final leg
    // with the destination done, every chamber done.
    bool done = true;
    for (const TransferState& st : states)
      if (st.outcome.phase == TransferPhase::kTowingToPort ||
          st.outcome.phase == TransferPhase::kAwaitingAdmission ||
          (st.outcome.phase == TransferPhase::kInDestination && closed))
        done = false;
    if (done)
      for (std::size_t c = 0; c < n_chambers && done; ++c)
        done = chamber_done(c, t);
    if (done) break;
  }

  // ---- ground-truth accounting: chamber reports first, then transfers
  // judged against the destination chamber's delivered list. A transfer
  // stuck short of admission is a *global* failure: pull its port leg out of
  // the source chamber's books (no double counting) and make the failure an
  // explicit event there.
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    TransferState& st = states[i];
    if (st.outcome.phase != TransferPhase::kTowingToPort &&
        st.outcome.phase != TransferPhase::kAwaitingAdmission)
      continue;
    EpisodeRuntime& src = *runtimes[static_cast<std::size_t>(transfers[i].from_chamber)];
    src.record_event({report.ticks, EventKind::kDeliveryFailed, transfers[i].cage_id,
                      src.site(transfers[i].cage_id)});
    src.drop_goal(transfers[i].cage_id);
  }
  for (std::size_t c = 0; c < n_chambers; ++c)
    report.chambers.push_back(runtimes[c]->finish());
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    TransferState& st = states[i];
    if (st.outcome.phase == TransferPhase::kInDestination ||
        st.outcome.phase == TransferPhase::kDelivered) {
      // Judge by the destination chamber's ground truth, then move the leg
      // out of that chamber's books: chamber reports carry intra-chamber
      // goals only, transfers are accounted once, here (events stay — the
      // audit trail is per chamber).
      EpisodeReport& dest =
          report.chambers[static_cast<std::size_t>(transfers[i].to_chamber)];
      const auto in_list = [&](std::vector<int>& ids) {
        const auto it = std::find(ids.begin(), ids.end(), st.outcome.dest_cage_id);
        if (it == ids.end()) return false;
        ids.erase(it);
        return true;
      };
      const bool delivered = in_list(dest.delivered_ids);
      if (!delivered) in_list(dest.failed_ids);
      // The erased leg may have been the chamber's only failure.
      dest.success = dest.planned && dest.failed_ids.empty();
      st.outcome.phase = delivered ? TransferPhase::kDelivered : TransferPhase::kFailed;
    } else if (st.outcome.phase != TransferPhase::kFailed) {
      // Never reached the port / never admitted within the budget.
      st.outcome.phase = TransferPhase::kFailed;
    }
    report.transfers[i] = st.outcome;
    if (st.outcome.phase == TransferPhase::kDelivered)
      report.delivered_transfers.push_back(i);
    else
      report.failed_transfers.push_back(i);
  }
  return report;
}

}  // namespace biochip::control
