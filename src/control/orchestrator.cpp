#include "control/orchestrator.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "core/threadpool.hpp"
#include "obs/fold.hpp"
#include "obs/obs.hpp"

namespace biochip::control {

const char* to_string(TransferPhase phase) {
  switch (phase) {
    case TransferPhase::kQueued: return "queued";
    case TransferPhase::kTowingToPort: return "towing_to_port";
    case TransferPhase::kAwaitingAdmission: return "awaiting_admission";
    case TransferPhase::kInDestination: return "in_destination";
    case TransferPhase::kDelivered: return "delivered";
    case TransferPhase::kFailed: return "failed";
  }
  return "unknown";
}

Orchestrator::Orchestrator(const fluidic::ChamberNetwork& network,
                           OrchestratorConfig config)
    : network_(network), config_(std::move(config)) {
  BIOCHIP_REQUIRE(network_.chamber_count() >= 1, "orchestrator needs chambers");
  BIOCHIP_REQUIRE(config_.transfer_backoff >= 1, "transfer backoff must be >= 1");
  BIOCHIP_REQUIRE(config_.max_transfer_backoff >= config_.transfer_backoff,
                  "backoff cap must be >= the base backoff");
  BIOCHIP_REQUIRE(config_.escalate_after_denials >= 0 &&
                      config_.transfer_deadline >= 0,
                  "escalation / deadline thresholds must be non-negative");
}

namespace {

/// Mutable per-transfer arbitration state.
struct TransferState {
  TransferOutcome outcome;
  GridCoord port_from;  ///< port site in the source chamber
  GridCoord port_to;    ///< port site in the destination chamber
  int cooldown = 0;     ///< ticks until the next admission attempt
  int denial_streak = 0;  ///< consecutive denials at the current port
  int request_tick = -1;  ///< tick of the live admission request (deadline timer)
  std::vector<int> tried_ports;  ///< ports already used (escalation never revisits)
};

}  // namespace

OrchestratorReport Orchestrator::run(std::vector<ChamberSetup>& chambers,
                                     const std::vector<TransferGoal>& transfers,
                                     Rng stream_base, core::ThreadPool* pool,
                                     std::size_t max_parts) {
  const std::size_t n_chambers = network_.chamber_count();
  const std::size_t n_ports = network_.port_count();
  BIOCHIP_REQUIRE(chambers.size() == n_chambers,
                  "one ChamberSetup per network chamber");
  for (std::size_t c = 0; c < n_chambers; ++c) {
    const ChamberSetup& setup = chambers[c];
    BIOCHIP_REQUIRE(setup.cages != nullptr && setup.engine != nullptr &&
                        setup.imager != nullptr && setup.defects != nullptr &&
                        setup.bodies != nullptr,
                    "chamber setup is incomplete");
    const fluidic::ChamberSite& site = network_.chamber(static_cast<int>(c));
    BIOCHIP_REQUIRE(setup.cages->array().cols() == site.cols &&
                        setup.cages->array().rows() == site.rows,
                    "chamber world does not match the network site grid");
  }

  // Port health: a permanently failed port never carries a transfer again; an
  // intermittent outage holds admissions until `port_down_until` passes.
  std::vector<std::uint8_t> port_failed(n_ports, 0);
  std::vector<int> port_down_until(n_ports, 0);
  for (int p : config_.failed_ports) {
    BIOCHIP_REQUIRE(p >= 0 && static_cast<std::size_t>(p) < n_ports,
                    "failed_ports names an unknown port");
    port_failed[static_cast<std::size_t>(p)] = 1;
  }

  const bool closed = config_.control.closed_loop;

  // Resolve every transfer against the topology and stage the per-chamber
  // goal lists: the source chamber's supervisor sees the port site as the
  // cage's in-chamber delivery goal. Closed loop: a transfer whose source
  // port is already claimed by an earlier transfer starts `kQueued` — its
  // cage keeps a parked (goal-less) plan and receives the port goal only
  // when a port of the pair frees up, so two cages never race to one port
  // site. Open loop keeps the legacy blind behavior.
  std::vector<TransferState> states(transfers.size());
  std::vector<std::vector<CageGoal>> chamber_goals(n_chambers);
  for (std::size_t c = 0; c < n_chambers; ++c) chamber_goals[c] = chambers[c].goals;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const TransferGoal& tr = transfers[i];
    BIOCHIP_REQUIRE(tr.from_chamber >= 0 &&
                        static_cast<std::size_t>(tr.from_chamber) < n_chambers &&
                        tr.to_chamber >= 0 &&
                        static_cast<std::size_t>(tr.to_chamber) < n_chambers,
                    "transfer names an unknown chamber");
    const std::vector<int> candidates =
        network_.ports_between(tr.from_chamber, tr.to_chamber);
    BIOCHIP_REQUIRE(!candidates.empty(), "no port connects the transfer's chambers");
    // Closed loop stages toward the first *viable* port — alive and with
    // both endpoint sites defect-usable — so a port the self-test already
    // condemned does not sink the whole chamber's initial plan. No viable
    // port yet (held, blocked, or failed) parks the transfer `kQueued`; the
    // per-tick activation pass below claims a port later or fails the
    // transfer explicitly. Open loop keeps the legacy blind staging.
    int port = candidates.front();
    if (closed) {
      port = -1;
      for (const int p : candidates) {
        if (port_failed[static_cast<std::size_t>(p)]) continue;
        const std::size_t from_c = static_cast<std::size_t>(tr.from_chamber);
        const std::size_t to_c = static_cast<std::size_t>(tr.to_chamber);
        if (!chip::site_usable(chambers[from_c].cages->array(),
                               *chambers[from_c].defects,
                               network_.port_site(p, tr.from_chamber),
                               config_.control.defect_ring) ||
            !chip::site_usable(chambers[to_c].cages->array(),
                               *chambers[to_c].defects,
                               network_.port_site(p, tr.to_chamber),
                               config_.control.defect_ring))
          continue;
        bool held = false;
        for (std::size_t j = 0; j < i; ++j)
          if (transfers[j].from_chamber == tr.from_chamber &&
              states[j].outcome.port_id == p &&
              states[j].outcome.phase == TransferPhase::kTowingToPort)
            held = true;
        if (held) continue;
        port = p;
        break;
      }
    }
    if (port < 0) {
      states[i].outcome.phase = TransferPhase::kQueued;
      continue;  // no staged goal: the cage parks until a port frees
    }
    states[i].outcome.port_id = port;
    states[i].port_from = network_.port_site(port, tr.from_chamber);
    states[i].port_to = network_.port_site(port, tr.to_chamber);
    states[i].tried_ports.push_back(port);
    chamber_goals[static_cast<std::size_t>(tr.from_chamber)].push_back(
        {tr.cage_id, states[i].port_from});
  }

  // One control stack per chamber, on disjoint fork-stream spaces.
  std::vector<std::unique_ptr<ClosedLoopEngine>> engines;
  std::vector<std::unique_ptr<EpisodeRuntime>> runtimes;
  engines.reserve(n_chambers);
  runtimes.reserve(n_chambers);
  for (std::size_t c = 0; c < n_chambers; ++c) {
    ChamberSetup& setup = chambers[c];
    engines.push_back(std::make_unique<ClosedLoopEngine>(
        *setup.cages, *setup.engine, *setup.imager, *setup.defects,
        config_.site_period, config_.control));
    // pool = nullptr inside the runtime: the chamber fan-out owns the pool
    // (nested parallel_for would deadlock); per-body streams are
    // counter-based, so this changes nothing bitwise.
    runtimes.push_back(std::make_unique<EpisodeRuntime>(
        *engines.back(), chamber_goals[c], *setup.bodies, setup.cage_bodies,
        stream_base.fork(static_cast<std::uint64_t>(c)), nullptr));
  }

  // Fault schedule, on its own stream slot past the chamber space (chamber c
  // forks `stream_base.fork(c)`, c < n_chambers — disjoint by construction).
  std::optional<chip::FaultInjector> injector;
  {
    const chip::FaultRates& r = config_.faults.rates;
    const bool any_rate = r.electrode_dead > 0.0 || r.electrode_stuck_cage > 0.0 ||
                          r.electrode_silent_dead > 0.0 ||
                          r.sensor_row_dropout > 0.0 || r.sensor_pixel_burst > 0.0 ||
                          r.port_intermittent > 0.0 || r.port_failed > 0.0;
    if (!config_.faults.scripted.empty() || any_rate) {
      std::vector<chip::ChamberShape> shapes;
      shapes.reserve(n_chambers);
      for (std::size_t c = 0; c < n_chambers; ++c) {
        const fluidic::ChamberSite& site = network_.chamber(static_cast<int>(c));
        shapes.push_back({site.cols, site.rows});
      }
      injector.emplace(config_.faults, std::move(shapes), n_ports,
                       stream_base.fork(static_cast<std::uint64_t>(n_chambers)));
    }
  }

  OrchestratorReport report;
  report.transfers.resize(transfers.size());
  const auto final_chamber_state = [&] {
    for (std::size_t p = 0; p < n_ports; ++p)
      if (port_failed[p]) report.failed_ports.push_back(static_cast<int>(p));
    for (std::size_t c = 0; c < n_chambers; ++c) {
      report.final_truth_defects.push_back(runtimes[c]->truth_defects());
      report.health.push_back(runtimes[c]->health_state());
    }
  };
  report.planned = std::all_of(runtimes.begin(), runtimes.end(),
                               [](const auto& r) { return r->planned(); });
  if (!report.planned) {
    // Same contract as the single-chamber engine: no episode, but complete
    // accounting — every chamber report is final, every transfer failed.
    // Transfers are accounted globally, so pull their port legs out of the
    // source chambers' books first (a failed-plan source already booked the
    // leg in its constructor; erase it from the finished report instead).
    // Queued transfers never staged a goal, so there is nothing to pull.
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      if (states[i].outcome.phase == TransferPhase::kQueued) continue;
      EpisodeRuntime& src =
          *runtimes[static_cast<std::size_t>(transfers[i].from_chamber)];
      if (src.planned()) src.drop_goal(transfers[i].cage_id);
    }
    for (std::size_t c = 0; c < n_chambers; ++c)
      report.chambers.push_back(runtimes[c]->finish());
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const TransferGoal& tr = transfers[i];
      if (states[i].outcome.phase == TransferPhase::kQueued) continue;
      if (runtimes[static_cast<std::size_t>(tr.from_chamber)]->planned()) continue;
      std::vector<int>& failed =
          report.chambers[static_cast<std::size_t>(tr.from_chamber)].failed_ids;
      failed.erase(std::remove(failed.begin(), failed.end(), tr.cage_id),
                   failed.end());
    }
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      states[i].outcome.phase = TransferPhase::kFailed;
      report.transfers[i] = states[i].outcome;
      report.failed_transfers.push_back(i);
    }
    final_chamber_state();
    return report;
  }

  // Global tick budget: the widest chamber budget plus slack per transfer
  // (a destination leg spans at most cols + rows sites, plus backoff room).
  int budget = config_.max_ticks;
  if (budget <= 0) {
    int base = 0;
    for (const auto& r : runtimes) base = std::max(base, r->budget());
    int slack = 0;
    for (const TransferGoal& tr : transfers) {
      const fluidic::ChamberSite& dest = network_.chamber(tr.to_chamber);
      slack += dest.cols + dest.rows + 8 * config_.transfer_backoff + 30;
    }
    budget = base + slack;
  }

  // ---- telemetry (optional): counting-plane folds of the same serial
  // arbitration totals the report carries, plus driver-phase trace spans.
  // All folds run in serial sections on report-identical state, so an
  // attached observer cannot perturb the bitwise serial-vs-pooled contract.
  obs::MetricsRegistry* reg = nullptr;
  obs::TraceRecorder* trace = nullptr;
  const core::PoolStats pool_base =
      pool != nullptr ? pool->stats() : core::PoolStats{};
  if (obs_ != nullptr && obs_->enabled()) {
    reg = &obs_->metrics();
    trace = obs_->trace();
    for (std::size_t c = 0; c < n_chambers; ++c) {
      runtimes[c]->set_trace(trace, static_cast<int>(c));
      fold_health(*reg, static_cast<int>(c), runtimes[c]->health_state());
      reg->gauge("chamber.replans", static_cast<int>(c));
    }
    reg->counter("transfer.requests");
    reg->counter("transfer.admissions");
    reg->counter("transfer.denials");
    reg->counter("transfer.reroutes");
    reg->counter("transfer.timeouts");
    reg->counter("orchestrator.elided_ticks");
    reg->counter("orchestrator.faults_injected");
    fold_pool(*reg, core::PoolStats{});
  }
  const auto fold_tick = [&](int t) {
    if (reg == nullptr) return;
    reg->set_counter(reg->counter("transfer.requests"), report.transfer_requests);
    reg->set_counter(reg->counter("transfer.admissions"), report.admissions);
    reg->set_counter(reg->counter("transfer.denials"), report.denials);
    reg->set_counter(reg->counter("transfer.reroutes"), report.reroutes);
    reg->set_counter(reg->counter("transfer.timeouts"), report.timeouts);
    reg->set_counter(reg->counter("orchestrator.elided_ticks"),
                     report.elided_chamber_ticks);
    reg->set_counter(reg->counter("orchestrator.faults_injected"),
                     report.injected_faults.size());
    for (std::size_t c = 0; c < n_chambers; ++c) {
      fold_health(*reg, static_cast<int>(c), runtimes[c]->health_state());
      reg->set(reg->gauge("chamber.replans", static_cast<int>(c)),
               static_cast<std::int64_t>(runtimes[c]->replans()));
    }
    fold_pool(*reg, pool != nullptr ? pool->stats().since(pool_base)
                                    : core::PoolStats{});
    obs_->snapshot_tick(t);
  };

  const auto chamber_done = [&](std::size_t c, int t) {
    return closed ? runtimes[c]->all_delivered() : t >= runtimes[c]->horizon();
  };
  // True while another transfer occupies (or tows toward) a port from the
  // same side — the physical port site holds one cage at a time.
  const auto port_held = [&](int p, int from_chamber, std::size_t self) {
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (j == self) continue;
      const TransferPhase ph = states[j].outcome.phase;
      if ((ph == TransferPhase::kTowingToPort ||
           ph == TransferPhase::kAwaitingAdmission) &&
          states[j].outcome.port_id == p &&
          transfers[j].from_chamber == from_chamber)
        return true;
    }
    return false;
  };

  for (int t = 1; t <= budget; ++t) {
    report.ticks = t;
    obs::PhaseTicker phase(trace, /*lane=*/-1, t);
    phase.begin("faults");

    // ---- runtime fault lifecycle, serial before the chamber fan-out so
    // every chamber sees the identical world serial or pooled: port
    // recoveries first, then this tick's injections.
    for (std::size_t p = 0; p < n_ports; ++p) {
      if (!port_failed[p] && port_down_until[p] == t) {
        const int a = network_.port(static_cast<int>(p)).a;
        runtimes[static_cast<std::size_t>(a)]->record_event(
            {t, EventKind::kPortRestored, static_cast<int>(p),
             network_.port_site(static_cast<int>(p), a)});
      }
    }
    if (injector.has_value()) {
      for (const chip::FaultEvent& f : injector->tick(t)) {
        report.injected_faults.push_back(f);
        switch (f.kind) {
          case chip::FaultKind::kElectrodeDead:
          case chip::FaultKind::kElectrodeStuckCage:
          case chip::FaultKind::kElectrodeSilentDead:
            runtimes[static_cast<std::size_t>(f.chamber)]->apply_electrode_fault(
                t, f.site, f.kind);
            break;
          case chip::FaultKind::kSensorRowDropout:
            runtimes[static_cast<std::size_t>(f.chamber)]->begin_sensor_dropout(
                t, f.site.row, f.duration);
            break;
          case chip::FaultKind::kSensorPixelBurst:
            runtimes[static_cast<std::size_t>(f.chamber)]->begin_sensor_burst(
                t, f.site, config_.faults.burst_tile, f.duration);
            break;
          case chip::FaultKind::kPortIntermittent: {
            port_down_until[static_cast<std::size_t>(f.port)] =
                std::max(port_down_until[static_cast<std::size_t>(f.port)],
                         t + f.duration);
            const int a = network_.port(f.port).a;
            runtimes[static_cast<std::size_t>(a)]->record_event(
                {t, EventKind::kPortDown, f.port, network_.port_site(f.port, a)});
            break;
          }
          case chip::FaultKind::kPortFailed: {
            port_failed[static_cast<std::size_t>(f.port)] = 1;
            const int a = network_.port(f.port).a;
            runtimes[static_cast<std::size_t>(a)]->record_event(
                {t, EventKind::kPortFailed, f.port, network_.port_site(f.port, a)});
            break;
          }
        }
      }
    }

    // ---- idle-chamber elision: a finished chamber referenced by no live
    // transfer skips its full tick (the watchdog still observes — see
    // EpisodeRuntime::idle_tick). Decided serially, so the fan-out below is
    // identical for any worker count.
    std::vector<std::uint8_t> elide(n_chambers, 0);
    if (closed && config_.elide_idle_chambers) {
      std::vector<std::uint8_t> referenced(n_chambers, 0);
      for (std::size_t i = 0; i < states.size(); ++i) {
        const TransferPhase ph = states[i].outcome.phase;
        if (ph == TransferPhase::kDelivered || ph == TransferPhase::kFailed)
          continue;
        referenced[static_cast<std::size_t>(transfers[i].from_chamber)] = 1;
        referenced[static_cast<std::size_t>(transfers[i].to_chamber)] = 1;
      }
      for (std::size_t c = 0; c < n_chambers; ++c)
        if (!referenced[c] && runtimes[c]->all_delivered()) {
          elide[c] = 1;
          ++report.elided_chamber_ticks;
        }
    }

    // ---- barrier-synchronized chamber ticks (disjoint worlds + streams).
    phase.begin("chambers");
    const auto step = [&](std::size_t c) {
      if (elide[c]) runtimes[c]->idle_tick(t);
      else runtimes[c]->tick(t);
    };
    if (pool != nullptr) {
      pool->parallel_for(
          0, n_chambers,
          [&](std::size_t cb, std::size_t ce) {
            for (std::size_t c = cb; c < ce; ++c) step(c);
          },
          max_parts);
    } else {
      for (std::size_t c = 0; c < n_chambers; ++c) step(c);
    }

    phase.begin("arbitrate");
    // ---- queued transfers claim freed ports (serial, ascending order: an
    // activation makes its port held for every later queued transfer).
    if (closed) {
      for (std::size_t i = 0; i < states.size(); ++i) {
        TransferState& st = states[i];
        if (st.outcome.phase != TransferPhase::kQueued) continue;
        const TransferGoal& tr = transfers[i];
        EpisodeRuntime& src = *runtimes[static_cast<std::size_t>(tr.from_chamber)];
        const std::vector<int> candidates =
            network_.ports_between(tr.from_chamber, tr.to_chamber);
        bool any_alive = false;
        for (int p : candidates) {
          if (port_failed[static_cast<std::size_t>(p)]) continue;
          // Belief-blocked endpoint sites only ever get worse (defects and
          // quarantine are one-way), so such a port counts as dead here.
          if (!src.site_ok(network_.port_site(p, tr.from_chamber)) ||
              !runtimes[static_cast<std::size_t>(tr.to_chamber)]->site_ok(
                  network_.port_site(p, tr.to_chamber)))
            continue;
          any_alive = true;
          if (port_held(p, tr.from_chamber, i)) continue;
          st.outcome.port_id = p;
          st.port_from = network_.port_site(p, tr.from_chamber);
          st.port_to = network_.port_site(p, tr.to_chamber);
          st.tried_ports.assign(1, p);
          st.outcome.phase = TransferPhase::kTowingToPort;
          src.assign_goal(tr.cage_id, st.port_from);
          break;
        }
        if (!any_alive) {
          // Every port of the pair failed permanently (or is condemned by
          // the defect/quarantine mask) while we queued: the transfer can
          // never start — explicit failure, not a livelock.
          src.record_event({t, EventKind::kDeliveryFailed, tr.cage_id,
                            src.site(tr.cage_id)});
          st.outcome.phase = TransferPhase::kFailed;
        }
      }
    }

    // ---- serial arbitration, ascending transfer order (deterministic).
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const TransferGoal& tr = transfers[i];
      TransferState& st = states[i];
      if (st.outcome.phase == TransferPhase::kQueued ||
          st.outcome.phase == TransferPhase::kDelivered ||
          st.outcome.phase == TransferPhase::kFailed)
        continue;
      EpisodeRuntime& src = *runtimes[static_cast<std::size_t>(tr.from_chamber)];
      EpisodeRuntime& dst = *runtimes[static_cast<std::size_t>(tr.to_chamber)];

      const auto fail_transfer = [&](int tick, GridCoord where) {
        src.record_event({tick, EventKind::kDeliveryFailed, tr.cage_id, where});
        src.drop_goal(tr.cage_id);  // accounted globally, not as a port leg
        st.outcome.phase = TransferPhase::kFailed;
      };
      // Escalate to an untried, alive, unblocked, unheld port of the same
      // chamber pair: re-tow there and restart the admission deadline.
      const auto escalate = [&]() -> bool {
        if (!closed) return false;
        for (int p : network_.ports_between(tr.from_chamber, tr.to_chamber)) {
          if (std::find(st.tried_ports.begin(), st.tried_ports.end(), p) !=
              st.tried_ports.end())
            continue;
          if (port_failed[static_cast<std::size_t>(p)]) continue;
          if (!src.site_ok(network_.port_site(p, tr.from_chamber))) continue;
          if (!dst.site_ok(network_.port_site(p, tr.to_chamber))) continue;
          if (port_held(p, tr.from_chamber, i)) continue;
          st.tried_ports.push_back(p);
          st.outcome.port_id = p;
          st.port_from = network_.port_site(p, tr.from_chamber);
          st.port_to = network_.port_site(p, tr.to_chamber);
          src.retarget(tr.cage_id, st.port_from);
          src.record_event(
              {t, EventKind::kTransferRerouted, tr.cage_id, st.port_from});
          ++st.outcome.reroutes;
          ++report.reroutes;
          st.outcome.phase = TransferPhase::kTowingToPort;
          st.request_tick = -1;
          st.denial_streak = 0;
          st.cooldown = 0;
          return true;
        }
        return false;
      };

      if (st.outcome.phase == TransferPhase::kTowingToPort) {
        // Closed loop reacts mid-tow when the chosen port dies or either
        // port site gets defect-blocked: re-route to an alternate port now
        // instead of finishing a doomed tow.
        if (closed && (port_failed[static_cast<std::size_t>(st.outcome.port_id)] ||
                       !src.site_ok(st.port_from) || !dst.site_ok(st.port_to))) {
          if (!escalate()) {
            fail_transfer(t, src.site(tr.cage_id));
            continue;
          }
        }
        // Closed loop: the source supervisor confirms port delivery (cell
        // present by tracker hysteresis). Open loop: blind hand-off on the
        // ground-truth cage position, cell or no cell.
        const bool at_port =
            closed ? (src.supervises(tr.cage_id) &&
                      src.mode(tr.cage_id) == CageMode::kDelivered)
                   : (src.site(tr.cage_id) == st.port_from);
        if (at_port) {
          st.outcome.phase = TransferPhase::kAwaitingAdmission;
          st.request_tick = t;
          src.record_event({t, EventKind::kTransferRequested, tr.cage_id, st.port_from});
          ++report.transfer_requests;
        }
      }

      if (st.outcome.phase == TransferPhase::kAwaitingAdmission) {
        // Admission deadline: a transfer does not wait at a port forever.
        if (config_.transfer_deadline > 0 && st.request_tick >= 0 &&
            t - st.request_tick >= config_.transfer_deadline) {
          src.record_event(
              {t, EventKind::kTransferTimedOut, tr.cage_id, st.port_from});
          st.outcome.timed_out = true;
          ++report.timeouts;
          fail_transfer(t, st.port_from);
          continue;
        }
        // A defect-blocked final destination can never be routed to, and a
        // quarantined destination chamber admits nothing: explicit permanent
        // failure, not an infinite backoff (an alternate port cannot help).
        if (!dst.site_ok(tr.destination) ||
            dst.health_state() == HealthState::kQuarantined) {
          fail_transfer(t, st.port_from);
          continue;
        }
        // A dead port or a defect-blocked receiving site: escalate to an
        // alternate port of the pair, or fail explicitly when none is left.
        if (port_failed[static_cast<std::size_t>(st.outcome.port_id)] ||
            !dst.site_ok(st.port_to)) {
          if (!escalate()) fail_transfer(t, st.port_from);
          continue;
        }
        // Intermittent outage: hold — no denial booked, no backoff grown,
        // but the admission deadline keeps running.
        if (t < port_down_until[static_cast<std::size_t>(st.outcome.port_id)])
          continue;
        if (st.cooldown > 0) {
          --st.cooldown;
          continue;
        }
        ++st.outcome.requests;
        // Stage the cell into the destination frame: the channel carries it
        // port-to-port, preserving its offset from the trap center (a cell
        // the source lost stays lost — open-loop hand-offs ship an offset
        // that no destination trap will hold).
        physics::ParticleBody cell = src.body_of(tr.cage_id);
        const Vec3 offset = cell.position - src.trap_center(st.port_from);
        const Aabb bounds =
            chambers[static_cast<std::size_t>(tr.to_chamber)].engine->integrator()
                .options().bounds;
        cell.position = bounds.clamp(dst.trap_center(st.port_to) + offset);
        const auto dest_id = dst.admit_cage(st.port_to, tr.destination, t, cell);
        if (!dest_id.has_value()) {
          ++st.outcome.denials;
          ++report.denials;
          ++st.denial_streak;
          src.record_event({t, EventKind::kTransferDenied, tr.cage_id, st.port_from});
          // Escalate after a denial streak; otherwise back off exponentially
          // (capped) — a congested or degraded destination is not hammered.
          if (config_.escalate_after_denials > 0 &&
              st.denial_streak >= config_.escalate_after_denials && escalate())
            continue;
          const int shift = std::min(st.denial_streak - 1, 16);
          st.cooldown = std::min(config_.max_transfer_backoff,
                                 config_.transfer_backoff << shift);
          continue;
        }
        src.release_cage(tr.cage_id);
        st.outcome.phase = TransferPhase::kInDestination;
        st.outcome.dest_cage_id = *dest_id;
        st.outcome.handoff_tick = t;
        st.denial_streak = 0;
        ++report.admissions;
      }

      if (st.outcome.phase == TransferPhase::kInDestination && closed &&
          dst.supervises(st.outcome.dest_cage_id) &&
          dst.mode(st.outcome.dest_cage_id) == CageMode::kDelivered) {
        st.outcome.phase = TransferPhase::kDelivered;
      }
    }

    fold_tick(t);

    // ---- global termination: every transfer terminal or in its final leg
    // with the destination done, every chamber done.
    bool done = true;
    for (const TransferState& st : states)
      if (st.outcome.phase == TransferPhase::kQueued ||
          st.outcome.phase == TransferPhase::kTowingToPort ||
          st.outcome.phase == TransferPhase::kAwaitingAdmission ||
          (st.outcome.phase == TransferPhase::kInDestination && closed))
        done = false;
    if (done)
      for (std::size_t c = 0; c < n_chambers && done; ++c)
        done = chamber_done(c, t);
    if (done) break;
  }

  // ---- ground-truth accounting: chamber reports first, then transfers
  // judged against the destination chamber's delivered list. A transfer
  // stuck short of admission is a *global* failure: pull its port leg out of
  // the source chamber's books (no double counting) and make the failure an
  // explicit event there. A still-queued transfer never staged a goal — only
  // the explicit failure event is owed.
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    TransferState& st = states[i];
    EpisodeRuntime& src = *runtimes[static_cast<std::size_t>(transfers[i].from_chamber)];
    if (st.outcome.phase == TransferPhase::kQueued) {
      src.record_event({report.ticks, EventKind::kDeliveryFailed,
                        transfers[i].cage_id, src.site(transfers[i].cage_id)});
      continue;
    }
    if (st.outcome.phase != TransferPhase::kTowingToPort &&
        st.outcome.phase != TransferPhase::kAwaitingAdmission)
      continue;
    src.record_event({report.ticks, EventKind::kDeliveryFailed, transfers[i].cage_id,
                      src.site(transfers[i].cage_id)});
    src.drop_goal(transfers[i].cage_id);
  }
  for (std::size_t c = 0; c < n_chambers; ++c)
    report.chambers.push_back(runtimes[c]->finish());
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    TransferState& st = states[i];
    if (st.outcome.phase == TransferPhase::kInDestination ||
        st.outcome.phase == TransferPhase::kDelivered) {
      // Judge by the destination chamber's ground truth, then move the leg
      // out of that chamber's books: chamber reports carry intra-chamber
      // goals only, transfers are accounted once, here (events stay — the
      // audit trail is per chamber).
      EpisodeReport& dest =
          report.chambers[static_cast<std::size_t>(transfers[i].to_chamber)];
      const auto in_list = [&](std::vector<int>& ids) {
        const auto it = std::find(ids.begin(), ids.end(), st.outcome.dest_cage_id);
        if (it == ids.end()) return false;
        ids.erase(it);
        return true;
      };
      const bool delivered = in_list(dest.delivered_ids);
      if (!delivered) in_list(dest.failed_ids);
      // The erased leg may have been the chamber's only failure.
      dest.success = dest.planned && dest.failed_ids.empty();
      st.outcome.phase = delivered ? TransferPhase::kDelivered : TransferPhase::kFailed;
    } else if (st.outcome.phase != TransferPhase::kFailed) {
      // Never reached the port / never admitted within the budget.
      st.outcome.phase = TransferPhase::kFailed;
    }
    report.transfers[i] = st.outcome;
    if (st.outcome.phase == TransferPhase::kDelivered)
      report.delivered_transfers.push_back(i);
    else
      report.failed_transfers.push_back(i);
  }
  final_chamber_state();
  fold_tick(report.ticks);
  return report;
}

}  // namespace biochip::control
