#pragma once
/// \file tracker.hpp
/// \brief Per-cage occupancy estimation from sensor detections.
///
/// The tracker is the state estimator between raw detections and the
/// supervisor: each live cage owns one track whose expected position is its
/// trap center. Every supervisory tick the detections are associated to the
/// expected positions by greedy nearest assignment
/// (`sensor::associate_detections`), and per-track hit/miss counters drive a
/// hysteresis state machine — occupied / lost / empty — so a single noisy
/// frame (missed detection, stray cluster) never flips a track. Detections
/// left unmatched after association are the candidate stray cells the
/// supervisor targets for recapture.

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "control/config.hpp"
#include "sensor/detect.hpp"

namespace biochip::control {

/// Track occupancy estimate.
enum class TrackState : std::uint8_t {
  kEmpty,     ///< no cell believed present (and none expected)
  kOccupied,  ///< cell confirmed in the cage
  kLost,      ///< cell believed escaped (confirmed by miss hysteresis)
};

const char* to_string(TrackState state);

/// One confirmed state transition from an update.
struct TrackChange {
  int cage_id = 0;
  TrackState state = TrackState::kOccupied;
};

/// Result of one tracker update.
struct TrackUpdate {
  std::vector<TrackChange> changes;               ///< hysteresis-confirmed flips
  std::vector<std::size_t> unmatched_detections;  ///< indices into `detections`
};

class OccupancyTracker {
 public:
  /// `gate_radius` must be resolved by the caller (config 0 = capture radius).
  OccupancyTracker(TrackerConfig config, double gate_radius);

  /// Register a track for a cage. Initial state is trusted (no hysteresis).
  void add_track(int cage_id, TrackState initial = TrackState::kOccupied);
  void remove_track(int cage_id);

  TrackState state(int cage_id) const;
  /// Last associated detection position; valid once the track ever matched.
  bool has_fix(int cage_id) const;
  Vec2 last_fix(int cage_id) const;

  /// One frame: `expected[i]` is the trap center of `cage_ids[i]` (every
  /// registered track, ascending cage id). Associates detections, advances
  /// the hit/miss hysteresis, and reports confirmed transitions plus the
  /// detections no track claimed.
  TrackUpdate update(const std::vector<int>& cage_ids, const std::vector<Vec2>& expected,
                     const std::vector<sensor::Detection>& detections);

  /// All registered cage ids, ascending.
  std::vector<int> cage_ids() const;

 private:
  struct Track {
    int cage_id = 0;
    TrackState state = TrackState::kOccupied;
    int hits = 0;    ///< consecutive matched frames
    int misses = 0;  ///< consecutive unmatched frames
    bool has_fix = false;
    Vec2 fix;
  };

  Track& track(int cage_id);
  const Track& track(int cage_id) const;

  TrackerConfig config_;
  double gate_radius_;
  std::vector<Track> tracks_;  ///< sorted by cage_id
};

}  // namespace biochip::control
