#include "control/health.hpp"

#include "common/error.hpp"

namespace biochip::control {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kNormal: return "normal";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kQuarantined: return "quarantined";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config, int cols, int rows)
    : config_(config), cols_(cols), rows_(rows),
      strikes_(static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows), 0),
      last_strike_(strikes_.size(), 0), quarantined_(strikes_.size(), 0),
      quarantined_at_(strikes_.size(), 0) {
  BIOCHIP_REQUIRE(cols >= 1 && rows >= 1, "health monitor needs a site grid");
  BIOCHIP_REQUIRE(config_.suspect_after_losses >= 1,
                  "suspect threshold must be at least one loss");
  BIOCHIP_REQUIRE(config_.quarantine_ring >= 0, "quarantine ring must be >= 0");
  BIOCHIP_REQUIRE(config_.strike_window >= 0, "strike window must be >= 0");
  BIOCHIP_REQUIRE(config_.quarantine_probation >= 0,
                  "quarantine probation must be >= 0");
}

std::size_t HealthMonitor::index(GridCoord site) const {
  BIOCHIP_REQUIRE(site.col >= 0 && site.col < cols_ && site.row >= 0 &&
                      site.row < rows_,
                  "health monitor site out of range");
  return static_cast<std::size_t>(site.row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(site.col);
}

int HealthMonitor::strikes(GridCoord site) const { return strikes_[index(site)]; }

bool HealthMonitor::admission_allowed(int t, int last_admission) const {
  if (!config_.enabled) return true;
  switch (state_) {
    case HealthState::kNormal: return true;
    case HealthState::kDegraded:
      return last_admission < 0 || t - last_admission >= config_.degraded_admission_cooldown;
    case HealthState::kQuarantined: return false;
  }
  return true;
}

std::vector<ControlEvent> HealthMonitor::observe(int t,
                                                 const std::vector<ControlEvent>& window,
                                                 double excess_blocked_fraction) {
  fresh_.clear();
  rehabbed_.clear();
  std::vector<ControlEvent> decisions;
  if (!config_.enabled) return decisions;

  // Probation: quarantines that served their term are lifted and the site's
  // strikes reset. A false positive (transient sensor noise, a stray escape)
  // recovers for good; a genuinely dead electrode re-earns its quarantine as
  // soon as traffic probes it again.
  if (config_.quarantine_probation > 0) {
    for (std::size_t i = 0; i < quarantined_.size(); ++i) {
      if (quarantined_[i] == 0 ||
          t - quarantined_at_[i] <= config_.quarantine_probation)
        continue;
      quarantined_[i] = 0;
      strikes_[i] = 0;
      const GridCoord s{static_cast<int>(i) % cols_,
                        static_cast<int>(i) / cols_};
      rehabbed_.push_back(s);
      decisions.push_back({t, EventKind::kSiteRehabilitated, -1, s});
    }
  }

  // Strike accounting: each confirmed loss or failed recapture at a site is
  // one strike against that site's electrode. At the threshold the whole
  // cage neighborhood is quarantined — a cage parked next to a dead pixel
  // has no counter-phase wall either.
  for (const ControlEvent& e : window) {
    if (e.kind != EventKind::kCellLost && e.kind != EventKind::kRecaptureFailed)
      continue;
    const std::size_t idx = index(e.site);
    if (quarantined_[idx] != 0) continue;  // already decided
    // Stale strikes expire: isolated losses far apart in time are noise,
    // not a dead electrode (which re-strikes within any window).
    if (config_.strike_window > 0 && strikes_[idx] > 0 &&
        t - last_strike_[idx] > config_.strike_window)
      strikes_[idx] = 0;
    last_strike_[idx] = t;
    if (++strikes_[idx] < config_.suspect_after_losses) continue;
    for (int dr = -config_.quarantine_ring; dr <= config_.quarantine_ring; ++dr)
      for (int dc = -config_.quarantine_ring; dc <= config_.quarantine_ring; ++dc) {
        const GridCoord s{e.site.col + dc, e.site.row + dr};
        if (s.col < 0 || s.col >= cols_ || s.row < 0 || s.row >= rows_) continue;
        const std::size_t ring_idx = index(s);
        if (quarantined_[ring_idx] != 0) continue;
        quarantined_[ring_idx] = 1;
        quarantined_at_[ring_idx] = t;
        fresh_.push_back(s);
      }
    decisions.push_back({t, EventKind::kSiteQuarantined, -1, e.site});
  }

  // One-way ladder on the excess blocked fraction (quarantines above feed
  // the mask the caller reports back next tick, so the ladder reacts one
  // observation later — deliberately conservative, never oscillating).
  if (state_ == HealthState::kNormal &&
      excess_blocked_fraction >= config_.degraded_blocked_fraction) {
    state_ = HealthState::kDegraded;
    decisions.push_back({t, EventKind::kHealthDegraded, -1, {}});
  }
  if (state_ != HealthState::kQuarantined &&
      excess_blocked_fraction >= config_.quarantined_blocked_fraction) {
    state_ = HealthState::kQuarantined;
    decisions.push_back({t, EventKind::kHealthQuarantined, -1, {}});
  } else if (config_.quarantine_probation > 0) {
    // Probation mode: rehabilitated sites pull the blocked fraction back
    // down, so the ladder may climb again — one rung per observation, with
    // 2x hysteresis so it never oscillates around a threshold.
    if (state_ == HealthState::kQuarantined &&
        excess_blocked_fraction < 0.5 * config_.quarantined_blocked_fraction) {
      state_ = HealthState::kDegraded;
      decisions.push_back({t, EventKind::kHealthRecovered, -1, {}});
    } else if (state_ == HealthState::kDegraded &&
               excess_blocked_fraction < 0.5 * config_.degraded_blocked_fraction) {
      state_ = HealthState::kNormal;
      decisions.push_back({t, EventKind::kHealthRecovered, -1, {}});
    }
  }
  return decisions;
}

}  // namespace biochip::control
