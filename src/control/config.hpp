#pragma once
/// \file config.hpp
/// \brief Configuration of the closed-loop control subsystem.
///
/// One `ControlConfig` parameterizes the whole sense → track → replan →
/// actuate loop: sensing cadence and threshold, tracker hysteresis,
/// supervision policy knobs, and the per-episode fault injection that makes
/// closed-loop runs exercise the recovery paths. Everything is deterministic
/// given the episode's RNG stream: random escapes draw from counter-based
/// `Rng::fork` streams, so runs are bitwise reproducible across serial and
/// pooled execution.

#include <cstddef>
#include <utility>
#include <vector>

#include "control/health.hpp"
#include "field/solver.hpp"

namespace biochip::control {

/// Occupancy-tracker hysteresis: a track changes state only after N
/// *consecutive* frames agree, so a single noisy frame (one missed
/// detection, one stray cluster) never flips it.
struct TrackerConfig {
  int lost_after_misses = 3;    ///< occupied → lost after this many misses
  int occupied_after_hits = 2;  ///< (re)capture confirmed after this many hits
  double gate_radius = 0.0;     ///< association gate [m]; 0 = capture radius
};

struct ControlConfig {
  /// false = open-loop baseline: same physics and fault injection, but no
  /// sensing, tracking or supervision — the committed plan runs blind.
  bool closed_loop = true;

  /// CDS frames averaged per supervisory tick (√n noise reduction). A
  /// levitated lymphocyte reads ~1.9σ per CDS frame on the paper pixel, so
  /// 16 frames put the peak ~7.4σ above the noise — comfortably over the
  /// detection threshold below while one tick stays far shorter than the
  /// 0.4 s site period (claim C4's time-for-quality trade, spent on-line).
  std::size_t frames_per_tick = 16;
  /// Detection threshold in multiples of the averaged-frame noise σ.
  double threshold_sigma = 4.0;
  /// Stuck-cage pixels read this many thresholds of fake ΔC (negative).
  double stuck_cage_thresholds = 4.0;

  /// Steady-state sense slow-down (the healthy-direction counterpart of the
  /// health ladder's degraded frames boost): while every supervised cage is
  /// confirmed occupied and on its nominal leg (en route or delivered — no
  /// pause, recapture or stall business) a kNormal chamber divides
  /// `frames_per_tick` by this factor, spending less sensing time when
  /// nothing is suspect. The detection threshold tracks the averaged-noise σ
  /// as always, so the threshold/noise ratio is unchanged; pick a divisor
  /// that keeps the per-frame signal margin (see `frames_per_tick`) above
  /// the threshold. 1 = off (bitwise-identical legacy behavior). The
  /// degraded boost always wins over the slow-down.
  std::size_t steady_frames_divisor = 1;

  /// Recycle `EpisodeRuntime` body slots (and physics stream ids) on
  /// `release_cage`, so open-ended streaming runs keep the body array
  /// bounded by the peak in-flight count. Physics streams are then keyed by
  /// a persistent per-admission counter instead of the slot index — still
  /// collision-free and worker-count invariant, but a different stream
  /// layout, so episode runs keep the legacy keying by default.
  bool recycle_slots = false;

  /// Controller-side bad-pixel masking (standard calibration practice): the
  /// self-test defect map is controller knowledge, so known-bad pixels are
  /// zeroed before thresholding. Disabling it exposes the raw sensor faults
  /// — every stuck-cage pixel then reads as a permanently parked phantom
  /// particle (`stuck_cage_thresholds`) — the ablation that shows why the
  /// masking is load-bearing.
  bool bad_pixel_masking = true;

  TrackerConfig tracker;

  /// Tick budget; 0 = auto (scaled from the initial plan's makespan).
  int max_ticks = 0;
  /// Committed-path steps checked ahead against defective sites each tick.
  int lookahead = 2;
  /// Plan the initial routes against the defect map's blocked mask. false
  /// starts from the same defect-blind plan as the open-loop baseline and
  /// relies on the online lookahead replanner — the harder exercise.
  bool defect_aware_initial = true;
  /// Consecutive actuation stalls (separation clash with a deviating cage)
  /// after which the supervisor re-routes the stalled cage.
  int stall_replan_after = 2;
  /// Ticks a cage waits after a failed replan attempt before retrying. Even
  /// with the router's fast-fail prechecks, a temporally congested replan
  /// costs a real time-expanded search; hammering it every tick is what
  /// would make a stuck episode O(sites × horizon) per tick.
  int replan_backoff = 3;

  /// Per-cage per-tick probability of an injected cell escape.
  double escape_rate = 0.0;
  /// Scripted escapes as (tick, cage id) — deterministic loss events for
  /// tests and demos, independent of the random rate.
  std::vector<std::pair<int, int>> forced_escapes;
  /// Fully scripted escapes with an explicit heading, for tests that need
  /// the cell to land at a known spot (e.g. inside a blocked neighborhood
  /// to exercise the rescue maneuver). Fired like `forced_escapes` but with
  /// the given angle [rad] and displacement [pitches] instead of drawing
  /// them from the fault stream.
  struct DirectedEscape {
    int tick = 0;
    int cage_id = 0;
    double angle = 0.0;
    double distance_pitches = 2.5;
  };
  std::vector<DirectedEscape> directed_escapes;
  /// Injected escapes displace the cell this many pitches (must exceed the
  /// capture radius or the trap immediately pulls the cell back).
  double escape_distance_pitches = 2.5;

  /// Max cage-to-detection distance [pitches] for recapture targeting.
  int recapture_search_pitches = 8;
  /// Ticks a recapturing cage waits at the capture site before giving up on
  /// a stale fix and re-acquiring a fresh one.
  int recapture_patience = 12;

  /// Ring of pixels a cage site needs functional (`chip::site_usable`):
  /// defines both the physical trap-holds test and the routing blocked mask.
  int defect_ring = 1;

  /// Rescue maneuver for cells lost into a fully blocked neighborhood: an
  /// *empty* cage may traverse sites whose own pixel is healthy even when
  /// the counter-phase ring is not (there is no cell aboard to lose), park
  /// adjacent to the stray cell, trap it, and drag the basin back across the
  /// defect boundary before resuming normal routing. Off by default — it
  /// deliberately bends the ring-usability rule, so it must be opted into.
  bool rescue = false;

  /// Per-chamber watchdog + degradation ladder (`control/health.hpp`).
  HealthConfig health;

  /// Tracked whole-chamber potential (field/incremental.hpp): grid nodes per
  /// electrode pitch for the live Laplace solution the runtime maintains
  /// alongside the cage surrogate. 0 (default) = off — no grid is allocated
  /// and the tick path is unchanged. When on, each tick's actuation writes a
  /// per-electrode drive (+`field_tracking_drive` on every site whose trap
  /// ground-truth-functions, 0 elsewhere) and the tracker re-solves only the
  /// windows around electrodes whose drive changed, re-anchoring with a full
  /// FMG solve on the `field_tracking.incremental.reanchor_period` cadence.
  /// Deterministic: the drive depends only on simulation state, and the
  /// windowed solver is bitwise identical serial vs pooled.
  std::size_t field_tracking_nodes_per_pitch = 0;
  /// Drive written to a live (ground-truth-functional) cage-site electrode.
  double field_tracking_drive = 1.0;
  /// Solver policy of the tracked field (cycle/tolerance/incremental block).
  field::SolverOptions field_tracking;
};

}  // namespace biochip::control
