// Design-flow explorer: given a project's fabrication turnaround, cost, and
// model fidelity, should you run the paper's Fig. 1 (simulate-first) or
// Fig. 2 (fabricate-first) loop? Explores both presets and a user-style
// what-if grid.
//
// Run:  ./design_flow_explorer

#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "flow/montecarlo.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

void explore(const flow::FlowParameters& params) {
  const flow::FlowComparison cmp = flow::compare_flows(params, 3000, 99);
  std::cout << "\n--- " << params.name << " ---\n";
  Table t({"flow", "mean time [d]", "p90 [d]", "mean cost [kEUR]", "fab runs"});
  for (const flow::FlowStats* s : {&cmp.simulate_first, &cmp.fabricate_first})
    t.row()
        .cell(flow::to_string(s->kind))
        .cell(s->time.mean() / 86400.0, 1)
        .cell(s->time_p90 / 86400.0, 1)
        .cell(s->cost.mean() / 1e3, 1)
        .cell(s->fabrications.mean(), 2);
  t.print(std::cout);
  std::cout << "Recommendation: " << flow::to_string(cmp.faster) << " is "
            << cmp.time_ratio << "x faster"
            << (cmp.faster == cmp.cheaper ? " and cheaper.\n"
                                          : " (but not cheaper — check budget).\n");
}

}  // namespace

int main() {
  std::cout << "Fig.1 vs Fig.2 — which design flow for which technology?\n";

  // The two habitats from the paper.
  explore(flow::cmos_flow_parameters());
  explore(flow::fluidic_flow_parameters());

  // What-if grid: a new process whose turnaround and model quality you can
  // estimate — where does it land?
  std::cout << "\n--- what-if grid: winner by (fab turnaround, sim coverage) ---\n";
  Table grid({"turnaround \\ coverage", "0.3", "0.6", "0.9"});
  for (double days : {1.0, 7.0, 30.0, 90.0}) {
    Table& row = grid.row();
    row.cell(fmt(days, 0) + " d");
    for (double coverage : {0.3, 0.6, 0.9}) {
      flow::FlowParameters p = flow::fluidic_flow_parameters();
      p.fabricate.duration_mean = days * 86400.0;
      p.fabricate.cost = 100.0 * std::sqrt(days);  // cost grows with turnaround
      p.fidelity.coverage = coverage;
      const flow::FlowComparison cmp = flow::compare_flows(p, 1200, 7);
      row.cell(cmp.faster == flow::FlowKind::kSimulateFirst ? "Fig.1 sim-first"
                                                            : "Fig.2 fab-first");
    }
  }
  grid.print(std::cout);
  std::cout << "\nReading: fast prototypes push the frontier toward Fig.2 even with\n"
               "good models; slow fabs demand Fig.1 even with poor models — the\n"
               "paper's §2/§3 prescription as a lookup table.\n";
  return 0;
}
