// Capacitive imaging: scatter beads over the array, acquire averaged
// capacitance frames, and render the label-free "image" the chip sees —
// the sensing half of the paper (ref [4], Romani et al. ISSCC'04), with the
// claim-C4 averaging trade made visible: the same scene at N=1 vs N=64.
//
// Run:  ./capacitive_imaging

#include <cmath>
#include <iostream>

#include "cell/library.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/platform.hpp"
#include "sensor/detect.hpp"
#include "sensor/frame.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

// ASCII rendering: darker glyph = stronger |dC|.
void render(const Grid2& frame, double sigma) {
  static const char* kRamp = " .:-=+*#%@";
  for (std::size_t j = 0; j < frame.ny(); ++j) {
    for (std::size_t i = 0; i < frame.nx(); ++i) {
      const double snr = -frame.at(i, j) / sigma;  // cells give negative dC
      int level = snr <= 1.0 ? 0 : static_cast<int>(std::log2(snr) * 2.0);
      if (level > 9) level = 9;
      if (level < 0) level = 0;
      std::cout << kRamp[level];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  core::PlatformConfig config = core::PlatformConfig::paper_defaults();
  config.device.cols = 72;
  config.device.rows = 24;  // letterbox tile renders nicely in a terminal
  config.seed = 314;
  core::LabOnChipPlatform lab(config);

  // A sparse scene: 6 polystyrene beads (strong nDEP at 100 kHz, good test
  // targets for the capacitive sensor).
  lab.load_sample({{cell::polystyrene_bead(4.0e-6), 6, 0.03}});

  sensor::CapacitivePixel px;
  px.electrode_area = lab.device().array().footprint({0, 0}).area();
  px.chamber_height = lab.device().config().chamber_height;
  px.sense_voltage = lab.device().drive_amplitude();
  sensor::FrameSynthesizer synth(lab.device().array(), px,
                                 config.medium.temperature, config.seed);

  std::vector<sensor::FrameTarget> scene;
  for (const auto& body : lab.bodies()) scene.push_back({body.position, body.radius});

  Rng rng(11);
  for (std::size_t n : {1u, 64u}) {
    const Grid2 frame = synth.averaged_frame(scene, rng, n);
    const double sigma = synth.cds_noise_sigma() / std::sqrt(static_cast<double>(n));
    std::cout << "\n=== averaged frames: N = " << n
              << "  (noise sigma = " << sigma * 1e18 << " aF) ===\n";
    render(frame, sigma);
    const auto dets = sensor::detect_threshold(frame, lab.device().array(), 5.0 * sigma);
    std::cout << "threshold detections at 5 sigma: " << dets.size() << "/6\n";
  }

  std::cout << "\nThe N=1 frame is speckle; at N=64 the beads stand out at 5 sigma\n"
               "— time traded for quality, exactly as the paper prescribes (C4).\n";
  return 0;
}
