// Viability sorting: separate live from dead lymphocytes using their DEP
// contrast. Below the viable cell's crossover frequency, intact-membrane
// cells feel negative DEP (cageable) while permeabilized (dead) cells feel
// positive DEP (not cageable) — so traps select the live subpopulation, and
// routing them to a recovery zone completes the sort. This is the paper's
// flagship application domain (single-cell manipulation for diagnostics).
//
// Run:  ./cell_sorting

#include <iostream>
#include <map>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/platform.hpp"
#include "physics/dielectrics.hpp"

using namespace biochip;

int main() {
  // 1. Pick the operating frequency from the dielectric spectra: below the
  //    viable crossover, above the sign flip of the dead cell.
  const physics::Medium buffer = physics::dep_buffer();
  const cell::ParticleSpec viable = cell::viable_lymphocyte();
  const cell::ParticleSpec dead = cell::nonviable_lymphocyte();
  const auto fx_viable =
      physics::crossover_frequency(viable.dielectric, viable.radius, buffer);

  std::cout << "Viable-cell crossover: "
            << (fx_viable ? si_format(*fx_viable, "Hz") : "none") << "\n";
  const double f_op = 100e3;  // comfortably below the viable crossover
  std::cout << "Operating at " << si_format(f_op, "Hz") << ": ReK(viable) = "
            << viable.re_k(buffer, f_op) << ", ReK(dead) = " << dead.re_k(buffer, f_op)
            << "\n\n";

  // 2. Load a mixed sample on a 96x96 tile of the paper device.
  core::PlatformConfig config = core::PlatformConfig::paper_defaults();
  config.device.cols = 96;
  config.device.rows = 96;
  config.device.drive_frequency = f_op;
  config.seed = 2025;
  core::LabOnChipPlatform lab(config);
  lab.load_sample({{viable, 12, 0.06}, {dead, 12, 0.06}});

  // 3. Attempt to trap every cell: only nDEP (viable) cells can be caged.
  std::map<std::string, int> trapped, total;
  std::vector<std::pair<int, std::string>> cages;  // (cage id, label)
  for (const cell::Instance& inst : lab.sample()) {
    ++total[inst.label];
    const auto cage = lab.trap_cell(inst.id);
    if (cage) {
      ++trapped[inst.label];
      cages.emplace_back(*cage, inst.label);
    }
  }

  // 4. Convey every caged cell to the recovery column on the east edge.
  //    Single-cage L-paths can be blocked by other parked cages, so sweep
  //    until no further progress (congestion resolves as cages leave).
  std::map<int, GridCoord> dest;
  int lane = 4;
  for (const auto& [cage_id, label] : cages) {
    dest[cage_id] = {92, lane};
    lane += 4;  // respect cage separation in the recovery column
  }
  int recovered = 0;
  std::map<int, bool> done;
  for (int pass = 0; pass < 4; ++pass) {
    bool progress = false;
    for (const auto& [cage_id, label] : cages) {
      if (done[cage_id]) continue;
      const core::MoveResult mv = lab.move_cell(cage_id, dest[cage_id]);
      if (mv.success) {
        done[cage_id] = true;
        ++recovered;
        progress = true;
      }
    }
    if (!progress) break;
  }

  // 5. Score the sort.
  const int viable_trapped = trapped["viable_lymphocyte"];
  const int dead_trapped = trapped["nonviable_lymphocyte"];
  const double purity =
      cages.empty() ? 0.0
                    : static_cast<double>(viable_trapped) /
                          static_cast<double>(viable_trapped + dead_trapped);
  const double recovery =
      static_cast<double>(viable_trapped) / total["viable_lymphocyte"];

  Table t({"population", "loaded", "caged", "comment"});
  t.row()
      .cell("viable_lymphocyte")
      .cell(total["viable_lymphocyte"])
      .cell(viable_trapped)
      .cell("nDEP: caged & levitated");
  t.row()
      .cell("nonviable_lymphocyte")
      .cell(total["nonviable_lymphocyte"])
      .cell(dead_trapped)
      .cell("pDEP: rejected by traps");
  t.print(std::cout);

  std::cout << "\nSort purity:   " << purity * 100.0 << " %\n"
            << "Sort recovery: " << recovery * 100.0 << " % of viable cells\n"
            << "Conveyed to recovery zone: " << recovered << "/" << cages.size()
            << " cages\n";
  return (purity > 0.9 && recovery > 0.6) ? 0 : 1;
}
