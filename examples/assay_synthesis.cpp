// Assay synthesis: compile a PCR mixing-tree protocol onto the cell-array
// chip — schedule operations under mixer limits, place modules on the
// electrode grid, route the inter-module packet transfers collision-free,
// and report where the time actually goes. The CAD layer the paper's "Wild
// West" was missing.
//
// Run:  ./assay_synthesis

#include <iostream>

#include "cad/benchmarks.hpp"
#include "common/table.hpp"
#include "core/platform.hpp"

using namespace biochip;

int main() {
  // The protocol: 8 reagents merged down a binary tree (7 mixes) + output.
  const cad::AssayGraph assay = cad::pcr_mix(3);
  std::cout << "Assay '" << assay.name() << "': " << assay.size()
            << " operations, critical path " << assay.critical_path() << " s\n\n";

  // The machine: a 128x128 tile of the paper device, 4 concurrent mixer
  // regions, 2 I/O ports, cages dragged at 50 um/s.
  core::PlatformConfig config = core::PlatformConfig::paper_defaults();
  config.device.cols = 128;
  config.device.rows = 128;
  core::LabOnChipPlatform lab(config);
  const cad::ChipResources resources{4, 0, 2};

  const cad::SynthesisResult result = lab.run_assay(assay, resources);
  if (!result.success) {
    std::cerr << "synthesis failed:\n";
    for (const std::string& issue : result.issues) std::cerr << "  " << issue << "\n";
    return 1;
  }

  // Schedule view.
  Table sched({"op", "kind", "start [s]", "end [s]", "site"});
  for (const cad::Operation& op : assay.operations()) {
    const cad::ScheduledOp& so = result.schedule.at(op.id);
    const cad::PlacedModule& pm = result.placement.at(op.id);
    std::ostringstream site;
    site << pm.center();
    sched.row()
        .cell(op.label)
        .cell(cad::to_string(op.kind))
        .cell(so.start, 1)
        .cell(so.end, 1)
        .cell(site.str());
  }
  sched.print(std::cout);

  // Transfer episodes.
  Table eps({"departure [s]", "transfers", "route steps", "moves"});
  for (const cad::TransferEpisode& e : result.episodes)
    eps.row()
        .cell(e.depart, 1)
        .cell(static_cast<int>(e.transfers.size()))
        .cell(e.routes.makespan_steps)
        .cell(e.routes.total_moves);
  std::cout << "\n";
  eps.print(std::cout);

  std::cout << "\nTotals: processing " << result.processing_makespan
            << " s + transport " << result.transport_time << " s = "
            << result.total_time << " s  (" << result.transport_moves
            << " cage moves at " << lab.site_period() << " s/step)\n"
            << "\nNote the split: mass transport is a first-class cost on this\n"
               "chip — the scheduler view of the paper's claim C3.\n";
  return 0;
}
