// Parallel transport: the array's signature trick — many cells moving at
// once. Traps a 3x3 block of cells, then executes two collective maneuvers
// (a convoy shift and a block rotation) with collision-free multi-cage
// routing and full particle dynamics at every actuation step.
//
// Run:  ./parallel_transport

#include <iostream>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/platform.hpp"

using namespace biochip;

int main() {
  core::PlatformConfig config = core::PlatformConfig::paper_defaults();
  config.device.cols = 48;
  config.device.rows = 48;
  config.seed = 77;
  core::LabOnChipPlatform lab(config);

  // Nine cells pre-positioned on a 3x3 block (4-pitch spacing).
  lab.load_sample({{cell::viable_lymphocyte(), 9, 0.0}});
  std::vector<int> cages;
  for (std::size_t i = 0; i < 9; ++i) {
    lab.bodies()[i].position = {(12.0 + 6.0 * static_cast<double>(i % 3)) * 20e-6,
                                (14.0 + 6.0 * static_cast<double>(i / 3)) * 20e-6, 6e-6};
    const auto cage = lab.trap_cell(static_cast<int>(i));
    if (!cage) {
      std::cerr << "failed to trap cell " << i << "\n";
      return 1;
    }
    cages.push_back(*cage);
  }
  std::cout << "Trapped " << cages.size() << " cells on a 3x3 block.\n";

  Table t({"maneuver", "cages", "steps", "moves", "time [s]", "all retained"});

  // Maneuver 1: convoy — the whole block shifts 15 pitches east together.
  {
    std::vector<core::ParallelMoveRequest> reqs;
    for (int id : cages) {
      const GridCoord s = lab.cages().site(id);
      reqs.push_back({id, {s.col + 15, s.row}});
    }
    const core::ParallelMoveResult r = lab.move_cells(reqs);
    t.row()
        .cell("convoy +15 east")
        .cell(static_cast<int>(reqs.size()))
        .cell(static_cast<int>(r.steps_executed))
        .cell(r.routes.total_moves)
        .cell(r.elapsed, 1)
        .cell(r.success ? "yes" : (r.planned ? "LOST" : "PLAN FAILED"));
  }

  // Maneuver 2: rotate the block 180° — every cage swaps with its opposite,
  // maximal crossing traffic through the block center.
  {
    std::vector<GridCoord> sites;
    for (int id : cages) sites.push_back(lab.cages().site(id));
    std::vector<core::ParallelMoveRequest> reqs;
    for (std::size_t i = 0; i < cages.size(); ++i)
      reqs.push_back({cages[i], sites[cages.size() - 1 - i]});
    const core::ParallelMoveResult r = lab.move_cells(reqs);
    t.row()
        .cell("block rotation 180deg")
        .cell(static_cast<int>(reqs.size()))
        .cell(static_cast<int>(r.steps_executed))
        .cell(r.routes.total_moves)
        .cell(r.elapsed, 1)
        .cell(r.success ? "yes" : (r.planned ? "LOST" : "PLAN FAILED"));
  }
  t.print(std::cout);

  std::cout << "\nEvery step was validated twice: by the router's reservation\n"
               "table at planning time and by the cage controller + overdamped\n"
               "particle dynamics at execution time. One actuation step moves all\n"
               "nine cages simultaneously — scale this to the full 320x320 array\n"
               "and ~25,000 cages march in the same "
            << lab.site_period() << " s step (claim C1 + C3).\n";
  return 0;
}
