// Closed-loop sorting: the full sense → track → replan → actuate loop on a
// defective chip. A 32×32-site tile carries ≥2% defective pixels (traps
// parked on an unusable site exert no force) plus injected cell-escape
// events. The open-loop baseline executes the same plan blind and loses
// cells; the closed-loop engine watches every cage through the capacitive
// imager, confirms losses with hysteresis, pauses the tow, recaptures the
// stray cell and re-routes online around defects and congestion — and the
// whole episode is bitwise reproducible across serial and pooled execution.
//
// Run:  ./closed_loop_sorting

#include <chrono>
#include <iostream>
#include <memory>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/table.hpp"
#include "core/closed_loop.hpp"
#include "physics/medium.hpp"

using namespace biochip;

namespace {

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

// One self-contained chip world (episodes must not share mutable state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<control::CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 7),
        defects(dev.array()) {}

  void add_cell(GridCoord site, GridCoord goal) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius, spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    goals.push_back({id, goal});
  }
};

std::unique_ptr<World> make_world(const chip::DeviceConfig& cfg,
                                  const field::HarmonicCage& cage) {
  auto world = std::make_unique<World>(cfg, cage);
  // ≥2% defective pixels, seeded; launch/goal neighborhoods kept usable so
  // the episode starts legally (everything in between is the loop's problem).
  Rng defect_rng(515);
  world->defects = chip::sample_defects(world->dev.array(), 0.022, defect_rng);
  const int start_col = 4, goal_col = 27;
  const int rows[6] = {4, 8, 12, 16, 20, 24};
  for (const int row : rows)
    for (const int col : {start_col, goal_col})
      for (int dr = -1; dr <= 1; ++dr)
        for (int dc = -1; dc <= 1; ++dc)
          world->defects.set_state({col + dc, row + dr}, chip::PixelState::kOk);
  for (const int row : rows) world->add_cell({start_col, row}, {goal_col, row});
  return world;
}

}  // namespace

int main() {
  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = 32;
  cfg.rows = 32;
  const field::HarmonicCage cage = chip::BiochipDevice(cfg).calibrate_cage(5, 6);

  control::ControlConfig control_cfg;
  control_cfg.defect_aware_initial = false;  // same blind plan as the baseline
  control_cfg.escape_rate = 0.002;           // random losses, fork-stream seeded
  control_cfg.forced_escapes = {{6, 0}, {14, 3}};  // scripted losses (tick, cage)

  std::cout << "Closed-loop sorting on a 32x32 tile, "
            << make_world(cfg, cage)->defects.defect_count()
            << " defective pixels (2.2%), 6 cells, 2 scripted escapes\n\n";

  Table t({"mode", "delivered", "ticks", "replans", "lost events", "recaptures",
           "ticks/s"});
  control::EpisodeReport reports[2];
  for (const bool closed : {false, true}) {
    auto world = make_world(cfg, cage);
    control::ControlConfig c = control_cfg;
    c.closed_loop = closed;
    core::ClosedLoopTransporter transporter(world->cages, world->engine, world->imager,
                                            world->defects, 0.4, c);
    Rng rng(90210);
    const auto t0 = std::chrono::steady_clock::now();
    const control::EpisodeReport report =
        transporter.execute(world->goals, world->bodies, world->cage_bodies, rng);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    reports[closed ? 1 : 0] = report;
    t.row()
        .cell(closed ? "closed loop" : "open loop")
        .cell(std::to_string(report.delivered_ids.size()) + "/" +
              std::to_string(world->goals.size()))
        .cell(report.ticks)
        .cell(static_cast<int>(report.replans))
        .cell(static_cast<int>(count_events(report.events, control::EventKind::kCellLost)))
        .cell(static_cast<int>(
            count_events(report.events, control::EventKind::kCellRecaptured)))
        .cell(static_cast<double>(report.ticks) / wall, 1);
  }
  t.print(std::cout);

  std::cout << "\nClosed-loop audit trail:\n";
  for (const control::ControlEvent& e : reports[1].events)
    if (e.kind != control::EventKind::kDelivered) std::cout << "  " << e << "\n";

  // Determinism: the pooled episode fan-out must reproduce the serial
  // reference bit for bit (counter-based Rng::fork streams).
  std::vector<Vec3> positions[2];
  for (const std::size_t parts : {std::size_t{1}, std::size_t{0}}) {
    auto world = make_world(cfg, cage);
    core::ClosedLoopTransporter transporter(world->cages, world->engine, world->imager,
                                            world->defects, 0.4, control_cfg);
    std::vector<core::ClosedLoopTransporter::Episode> episodes{
        {&transporter, world->goals, &world->bodies, world->cage_bodies}};
    Rng rng(90210);
    core::ClosedLoopTransporter::execute_episodes(episodes, rng, parts);
    for (const physics::ParticleBody& b : world->bodies)
      positions[parts].push_back(b.position);
  }
  const bool bitwise = positions[0] == positions[1];
  std::cout << "\nSerial vs pooled execution bitwise identical: "
            << (bitwise ? "yes" : "NO") << "\n";

  const std::size_t goals_n = 6;
  const double closed_rate =
      static_cast<double>(reports[1].delivered_ids.size()) / goals_n;
  const double open_rate =
      static_cast<double>(reports[0].delivered_ids.size()) / goals_n;
  std::cout << "Open loop delivers " << open_rate * 100.0 << " %, closed loop "
            << closed_rate * 100.0 << " % (target >= 95 %).\n";
  return (bitwise && closed_rate >= 0.95 && open_rate < closed_rate) ? 0 : 1;
}
