// Long-horizon soak: a 3-chamber service loop under accumulating runtime
// faults (ISSUE 6 acceptance scenario, see docs/robustness.md).
//
// The soak drives back-to-back orchestrated service episodes over a
// 3-chamber chain with two transfer ports per adjacent pair. Each round
// carries the previous round's ground-truth defect map forward as the next
// round's announced self-test map (the chip "learns" yesterday's faults) and
// carries permanently failed ports into `OrchestratorConfig::failed_ports`.
// Each round draws a scripted fault schedule from the round index alone —
// identical for both arms, fired in the opening ticks so per-goal exposure
// does not scale with round length: electrode dead/stuck/silent-dead faults
// ramping to a held density of ~5.5% (14/256 sites per chamber), sensor row
// dropouts and pixel bursts, and intermittent port outages — so the late
// soak runs on a chip markedly worse than the first round's.
//
// Two arms run the same scenario: HealthMonitor enabled vs disabled. The
// soak fails (non-zero exit) unless
//   * each arm sustains >= the requested tick budget (default 200k),
//   * every transfer terminates (admitted/failed/timed out — no livelock),
//   * round 0 is bitwise serial-vs-pooled identical (event streams,
//     injections, accounting) for both arms, and
//   * the health-on arm's delivered fraction is strictly above health-off.
//
// Memory stays bounded: each round builds fresh chamber worlds and keeps
// only scalar accumulators plus the carried defect maps, so steady state
// allocates per round, not per tick.
//
// Usage: example_soak_chamber_service [total_ticks_per_arm] [--obs=PREFIX]
//
// --obs=PREFIX attaches the telemetry layer to the health-on arm's first
// round (one representative orchestrated episode — the JSONL tick stream
// must stay monotone, so telemetry is not stitched across rounds) and
// writes PREFIX.metrics.jsonl / PREFIX.trace.json / PREFIX.summary.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cad/route.hpp"
#include "cell/library.hpp"
#include "chip/defects.hpp"
#include "chip/device.hpp"
#include "control/orchestrator.hpp"
#include "core/closed_loop.hpp"
#include "fluidic/chamber_network.hpp"
#include "obs/obs.hpp"
#include "physics/medium.hpp"

namespace {

using namespace biochip;

constexpr int kGrid = 16;
constexpr std::size_t kChambers = 3;
/// Electrode-fault density target per chamber: 14/256 ~ 5.5% dead pixels.
constexpr std::size_t kElectrodeFaultTarget = 14;

fluidic::Microchamber chamber_geometry(const chip::DeviceConfig& cfg) {
  fluidic::Microchamber c;
  c.length = cfg.cols * cfg.pitch;
  c.width = cfg.rows * cfg.pitch;
  c.height = cfg.chamber_height;
  return c;
}

/// a - b - c chain with TWO ports per adjacent pair. Rows 7 and 11 keep the
/// two ports' defect rings disjoint — one dead pixel can condemn at most one
/// port of a pair, so a failed or blocked port always leaves an escalation
/// alternative until a second independent fault lands.
fluidic::ChamberNetwork chain(const chip::DeviceConfig& cfg) {
  fluidic::ChamberNetwork net;
  const fluidic::Microchamber geo = chamber_geometry(cfg);
  for (std::size_t c = 0; c < kChambers; ++c) net.add_chamber(geo, kGrid, kGrid);
  for (int c = 0; c + 1 < static_cast<int>(kChambers); ++c) {
    net.add_port(c, {14, 7}, c + 1, {1, 7}, 500e-6, 60e-6);
    net.add_port(c, {14, 11}, c + 1, {1, 11}, 500e-6, 60e-6);
  }
  return net;
}

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

/// One self-contained chamber world (chambers must not share mutable state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<control::CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 99),
        defects(dev.array()) {}

  int add_cell(GridCoord site) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius,
                      spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    return id;
  }

  control::ChamberSetup setup() {
    return {&cages, &engine, &imager, &defects, &bodies, cage_bodies, goals};
  }
};

/// Nearest defect-usable site to `want` (chebyshev rings, deterministic scan
/// order) that keeps >= 3 sites of clearance from everything in `taken`.
/// Returns nullopt when the neighborhood has degraded past usability.
std::optional<GridCoord> pick_usable(const chip::ElectrodeArray& array,
                                     const chip::DefectMap& defects, GridCoord want,
                                     std::vector<GridCoord>& taken) {
  for (int radius = 0; radius < kGrid; ++radius)
    for (int row = want.row - radius; row <= want.row + radius; ++row)
      for (int col = want.col - radius; col <= want.col + radius; ++col) {
        if (std::max(std::abs(row - want.row), std::abs(col - want.col)) != radius)
          continue;
        if (col < 1 || row < 1 || col >= kGrid - 1 || row >= kGrid - 1) continue;
        const GridCoord site{col, row};
        if (!chip::site_usable(array, defects, site)) continue;
        const auto clashes = [&](GridCoord t) {
          return std::max(std::abs(t.col - col), std::abs(t.row - row)) < 3;
        };
        if (std::any_of(taken.begin(), taken.end(), clashes)) continue;
        taken.push_back(site);
        return site;
      }
  return std::nullopt;
}

/// Carried state of one soak arm between rounds.
struct ArmState {
  std::vector<chip::DefectMap> defects;  ///< last round's ground truth
  std::vector<int> failed_ports;
};

struct RoundResult {
  control::OrchestratorReport report;
  std::size_t attempted = 0;  ///< transfers + intra-chamber goals this round
};

struct SoakTotals {
  long long ticks = 0;
  std::size_t rounds = 0;
  std::size_t attempted = 0;
  std::size_t delivered = 0;
  std::size_t livelocked = 0;
  std::size_t unplanned_rounds = 0;

  double fraction() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(delivered) / static_cast<double>(attempted);
  }
};

/// One service round: fresh worlds seeded from the arm's carried defects,
/// two cross-chamber transfers + one intra-chamber goal per chamber, run
/// under the round's scripted fault schedule.
RoundResult run_round(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage,
                      const fluidic::ChamberNetwork& net, const ArmState& arm,
                      bool health_on, std::uint64_t round, std::size_t max_parts,
                      obs::Observer* obs = nullptr) {
  std::vector<std::unique_ptr<World>> worlds;
  for (std::size_t c = 0; c < kChambers; ++c) {
    worlds.push_back(std::make_unique<World>(cfg, cage));
    if (!arm.defects.empty()) worlds[c]->defects = arm.defects[c];
  }

  // Port endpoints stay clear of cell starts/goals (3-site clearance).
  std::vector<std::vector<GridCoord>> taken(kChambers);
  for (std::size_t p = 0; p < net.port_count(); ++p) {
    const fluidic::TransferPort& port = net.port(static_cast<int>(p));
    taken[static_cast<std::size_t>(port.a)].push_back(port.a_site);
    taken[static_cast<std::size_t>(port.b)].push_back(port.b_site);
  }
  const auto pick = [&](std::size_t c, GridCoord want) {
    return pick_usable(worlds[c]->dev.array(), worlds[c]->defects, want, taken[c]);
  };
  // The service scheduler never dispatches a leg its own CAD layer calls
  // unroutable on the announced defect map — accumulated defects can cut a
  // usable site off from the rest of the chamber entirely.
  const auto routable = [&](std::size_t c, GridCoord from, GridCoord to) {
    cad::RouteConfig rc;
    rc.cols = kGrid;
    rc.rows = kGrid;
    rc.blocked = chip::blocked_site_mask(worlds[c]->dev.array(), worlds[c]->defects);
    return cad::route_astar({{0, from, to}}, rc).success;
  };

  RoundResult result;
  std::vector<control::TransferGoal> transfers;

  // Cross-chamber service legs: 0 -> 1 and 1 -> 2. A leg is staged only if
  // some port has a routable approach on the source side and a routable
  // final leg on the destination side.
  const auto stage_transfer = [&](std::size_t from, std::size_t to, GridCoord start,
                                  GridCoord dest) {
    const auto s = pick(from, start);
    const auto d = pick(to, dest);
    if (!s || !d) return;  // chamber degraded past staging this leg
    bool viable = false;
    for (const int p : net.ports_between(static_cast<int>(from), static_cast<int>(to)))
      if (routable(from, *s, net.port_site(p, static_cast<int>(from))) &&
          routable(to, net.port_site(p, static_cast<int>(to)), *d)) {
        viable = true;
        break;
      }
    if (!viable) return;
    const int id = worlds[from]->add_cell(*s);
    transfers.push_back({static_cast<int>(from), id, static_cast<int>(to), *d});
    ++result.attempted;
  };
  stage_transfer(0, 1, {10, 8}, {11, 4});
  stage_transfer(1, 2, {8, 12}, {11, 12});

  // One intra-chamber delivery per chamber.
  const GridCoord local_start[kChambers] = {{4, 4}, {4, 4}, {5, 5}};
  const GridCoord local_goal[kChambers] = {{11, 12}, {11, 4}, {12, 8}};
  for (std::size_t c = 0; c < kChambers; ++c) {
    const auto s = pick(c, local_start[c]);
    const auto g = pick(c, local_goal[c]);
    if (!s || !g || !routable(c, *s, *g)) continue;
    const int id = worlds[c]->add_cell(*s);
    worlds[c]->goals.push_back({id, *g});
    ++result.attempted;
  }

  control::OrchestratorConfig config;
  config.control.escape_rate = 5e-4;
  config.control.rescue = true;
  config.control.health.enabled = health_on;
  config.transfer_backoff = 4;
  config.max_transfer_backoff = 32;
  config.escalate_after_denials = 3;
  config.transfer_deadline = 150;
  config.elide_idle_chambers = true;
  config.failed_ports = arm.failed_ports;

  // Scripted fault schedule, drawn from the round index alone so both arms
  // face the identical fault set, and fired in the opening ticks so per-goal
  // exposure does not scale with round length (health-managed rounds run
  // longer — a per-tick rate would handicap exactly the arm under test).
  // Silent electrode faults keep landing every round; announced electrode
  // faults stop once a chamber's carried map reaches the density target,
  // which the carry loop in main() then holds frozen.
  Rng fault_rng = Rng(0xFA17).fork(round);
  const auto inner_site = [&]() -> GridCoord {
    return {static_cast<int>(fault_rng.uniform_int(2, kGrid - 3)),
            static_cast<int>(fault_rng.uniform_int(2, kGrid - 3))};
  };
  for (int c = 0; c < static_cast<int>(kChambers); ++c) {
    const std::size_t carried =
        arm.defects.empty() ? 0
                            : arm.defects[static_cast<std::size_t>(c)].defect_count();
    if (fault_rng.bernoulli(0.35))
      config.faults.scripted.push_back({static_cast<int>(fault_rng.uniform_int(2, 10)),
                                        chip::FaultKind::kElectrodeSilentDead, c,
                                        inner_site(), -1, 0});
    if (carried < kElectrodeFaultTarget && fault_rng.bernoulli(0.2))
      config.faults.scripted.push_back(
          {static_cast<int>(fault_rng.uniform_int(2, 10)),
           fault_rng.bernoulli(0.33) ? chip::FaultKind::kElectrodeStuckCage
                                     : chip::FaultKind::kElectrodeDead,
           c, inner_site(), -1, 0});
    if (fault_rng.bernoulli(0.05))
      config.faults.scripted.push_back(
          {static_cast<int>(fault_rng.uniform_int(2, 10)),
           chip::FaultKind::kSensorRowDropout, c,
           {0, static_cast<int>(fault_rng.uniform_int(0, kGrid - 1))}, -1, 4});
    if (fault_rng.bernoulli(0.08))
      config.faults.scripted.push_back({static_cast<int>(fault_rng.uniform_int(2, 10)),
                                        chip::FaultKind::kSensorPixelBurst, c,
                                        inner_site(), -1, 2});
  }
  for (int p = 0; p < static_cast<int>(net.port_count()); ++p)
    if (fault_rng.bernoulli(0.08))
      config.faults.scripted.push_back({static_cast<int>(fault_rng.uniform_int(1, 8)),
                                        chip::FaultKind::kPortIntermittent, -1,
                                        {0, 0}, p, 25});
  std::stable_sort(config.faults.scripted.begin(), config.faults.scripted.end(),
                   [](const chip::FaultEvent& a, const chip::FaultEvent& b) {
                     return a.tick < b.tick;
                   });

  control::Orchestrator orch(net, config);
  std::vector<control::ChamberSetup> chambers;
  for (auto& w : worlds) chambers.push_back(w->setup());
  Rng rng = Rng(0x50AC).fork(round);
  result.report = core::ClosedLoopTransporter::execute_orchestrated(
      orch, chambers, transfers, rng, max_parts, obs);
  return result;
}

void accumulate(SoakTotals& totals, const RoundResult& round) {
  // A round that could not plan at all reports 0 ticks; count it as one so
  // a chamber degraded past planning can never stall the soak loop.
  totals.ticks += std::max(1, round.report.ticks);
  ++totals.rounds;
  totals.attempted += round.attempted;
  if (!round.report.planned) {
    ++totals.unplanned_rounds;
    return;
  }
  totals.delivered += round.report.delivered_transfers.size();
  for (const control::EpisodeReport& chamber : round.report.chambers)
    totals.delivered += chamber.delivered_ids.size();
  for (const control::TransferOutcome& out : round.report.transfers)
    if (out.phase != control::TransferPhase::kDelivered &&
        out.phase != control::TransferPhase::kFailed)
      ++totals.livelocked;
}

bool reports_identical(const control::OrchestratorReport& a,
                       const control::OrchestratorReport& b) {
  if (a.ticks != b.ticks || a.transfer_requests != b.transfer_requests ||
      a.admissions != b.admissions || a.denials != b.denials ||
      a.reroutes != b.reroutes || a.timeouts != b.timeouts ||
      a.delivered_transfers != b.delivered_transfers ||
      a.failed_transfers != b.failed_transfers ||
      a.failed_ports != b.failed_ports ||
      a.injected_faults.size() != b.injected_faults.size() ||
      a.chambers.size() != b.chambers.size())
    return false;
  for (std::size_t f = 0; f < a.injected_faults.size(); ++f) {
    const chip::FaultEvent& x = a.injected_faults[f];
    const chip::FaultEvent& y = b.injected_faults[f];
    if (x.tick != y.tick || x.kind != y.kind || x.chamber != y.chamber ||
        !(x.site == y.site) || x.port != y.port || x.duration != y.duration)
      return false;
  }
  for (std::size_t c = 0; c < a.chambers.size(); ++c) {
    const auto& ea = a.chambers[c].events;
    const auto& eb = b.chambers[c].events;
    if (ea.size() != eb.size()) return false;
    for (std::size_t e = 0; e < ea.size(); ++e)
      if (ea[e].tick != eb[e].tick || ea[e].kind != eb[e].kind ||
          ea[e].cage_id != eb[e].cage_id || !(ea[e].site == eb[e].site))
        return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long total_ticks = 200000;
  std::string obs_prefix;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--obs=", 0) == 0) obs_prefix = arg.substr(6);
    else total_ticks = std::atoll(arg.c_str());
  }
  if (total_ticks <= 0) {
    std::fprintf(stderr, "usage: %s [total_ticks_per_arm > 0] [--obs=PREFIX]\n",
                 argv[0]);
    return 2;
  }

  std::optional<obs::Observer> observer;
  if (!obs_prefix.empty()) {
    obs::ObsConfig ocfg;
    ocfg.enabled = true;
    ocfg.snapshot_period = 100;
    ocfg.metrics_path = obs_prefix + ".metrics.jsonl";
    ocfg.trace_path = obs_prefix + ".trace.json";
    ocfg.summary_path = obs_prefix + ".summary.json";
    ocfg.label = "soak_chamber_service";
    observer.emplace(std::move(ocfg));
  }

  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = kGrid;
  cfg.rows = kGrid;
  const field::HarmonicCage cage = chip::BiochipDevice(cfg).calibrate_cage(5, 6);
  const fluidic::ChamberNetwork net = chain(cfg);

  bool ok = true;

  // Round 0 must be bitwise serial-vs-pooled identical in both arms.
  for (const bool health_on : {false, true}) {
    const ArmState fresh;
    if (std::getenv("SOAK_TRACE") != nullptr)
      std::fprintf(stderr, "identity check: health %s serial\n", health_on ? "on" : "off");
    const RoundResult serial = run_round(cfg, cage, net, fresh, health_on, 0, 1);
    if (std::getenv("SOAK_TRACE") != nullptr)
      std::fprintf(stderr, "identity check: health %s pooled (serial ticks %d)\n",
                   health_on ? "on" : "off", serial.report.ticks);
    const RoundResult pooled = run_round(cfg, cage, net, fresh, health_on, 0, 0);
    if (!reports_identical(serial.report, pooled.report)) {
      std::fprintf(stderr, "FAIL: serial vs pooled round-0 mismatch (health %s)\n",
                   health_on ? "on" : "off");
      ok = false;
    }
  }

  SoakTotals totals[2];
  for (const bool health_on : {false, true}) {
    ArmState arm;
    SoakTotals& arm_totals = totals[health_on ? 1 : 0];
    std::uint64_t round = 0;
    while (arm_totals.ticks < total_ticks) {
      // Telemetry covers one representative episode: the health-on arm's
      // first round (the JSONL tick stream must stay monotone, so rounds
      // are not stitched together).
      obs::Observer* round_obs =
          health_on && round == 0 && observer.has_value() ? &*observer : nullptr;
      const RoundResult result =
          run_round(cfg, cage, net, arm, health_on, round++, 0, round_obs);
      if (round_obs != nullptr) round_obs->finalize(result.report.ticks);
      accumulate(arm_totals, result);
      if (std::getenv("SOAK_TRACE") != nullptr)
        std::fprintf(stderr, "round %llu ticks %d attempted %zu planned %d\n",
                     static_cast<unsigned long long>(round), result.report.ticks,
                     result.attempted, result.report.planned ? 1 : 0);
      if (result.report.planned) {
        // Accumulate-then-hold: carry ground truth forward until a chamber
        // reaches the density target, then freeze its carried map so the
        // soak holds ~5.5% while fresh silent faults keep landing.
        if (arm.defects.empty()) {
          arm.defects = result.report.final_truth_defects;
        } else {
          for (std::size_t c = 0; c < kChambers; ++c)
            if (arm.defects[c].defect_count() < kElectrodeFaultTarget)
              arm.defects[c] = result.report.final_truth_defects[c];
        }
        arm.failed_ports = result.report.failed_ports;
      }
    }
    std::size_t worst_defects = 0;
    for (const chip::DefectMap& map : arm.defects)
      worst_defects = std::max(worst_defects, map.defect_count());
    std::printf(
        "health %-3s  rounds %zu  ticks %lld  delivered %zu/%zu (%.3f)  "
        "livelocked %zu  unplanned %zu  worst defect density %.1f%%\n",
        health_on ? "on" : "off", arm_totals.rounds, arm_totals.ticks,
        arm_totals.delivered, arm_totals.attempted, arm_totals.fraction(),
        arm_totals.livelocked, arm_totals.unplanned_rounds,
        100.0 * static_cast<double>(worst_defects) / (kGrid * kGrid));
  }

  if (totals[0].livelocked + totals[1].livelocked > 0) {
    std::fprintf(stderr, "FAIL: livelocked transfers detected\n");
    ok = false;
  }
  if (totals[1].fraction() <= totals[0].fraction()) {
    std::fprintf(stderr,
                 "FAIL: health-on delivered fraction %.3f not above health-off %.3f\n",
                 totals[1].fraction(), totals[0].fraction());
    ok = false;
  }
  return ok ? 0 : 1;
}
