// Open-system streaming service: continuous Poisson arrivals into a
// two-chamber chip, admission control with watermarked inlet queues and
// per-chamber in-flight quotas, typed load shedding, and a bounded-memory
// soak (ISSUE 7 acceptance scenario; docs/robustness.md, "Overload
// behavior").
//
// Phases:
//   1. identity  — a sustainable-load run must be bitwise serial-vs-pooled
//                  identical: one `==` over the whole streaming report plus
//                  every final body position.
//   2. capacity  — saturate the inlets to measure the chip's sustained
//                  service rate C (delivered cells per tick, whole chip).
//   3. sweep     — offered loads of 0.5x / 1.0x / 2.0x C: cells/hour and
//                  p50/p99 time-in-chip vs offered load. The scripted 2x
//                  overload arm must shed a sane typed fraction (every shed
//                  is a `kAdmissionShed` audit event, accounted one-to-one)
//                  while residency stays inside the quota + watermark bound.
//   4. soak      — [soak_ticks] at 1.0x C under accumulating (capped)
//                  electrode and sensor fault rates, health monitoring and
//                  idle-chamber elision. The peak-residency gates are the
//                  same as the short arms': memory does not scale with the
//                  horizon.
//
// Gates (non-zero exit): serial == pooled; exact accounting closure per arm
// (offered = shed + admitted + still-queued; admitted = delivered + evicted
// + still-in-flight — zero livelock by construction); latency histogram
// holds exactly the delivered cells; peak residency bounded by
// quota x chambers (+ queue capacity x inlets for in-flight); every arm
// keeps delivering; overload sheds >= 10% and no less than the half-load
// arm.
//
// Usage: example_streaming_chamber_service [soak_ticks] [--obs=PREFIX] [--quick]
// (default 2000 — CI scale; pass 1000000 for the long-horizon soak: the
// run takes correspondingly longer but holds the same peak residency.)
//
// --obs=PREFIX attaches the telemetry layer to the identity + soak arms and
// writes PREFIX.metrics.jsonl (periodic counting-plane snapshots),
// PREFIX.trace.json (Chrome-trace phase spans) and PREFIX.summary.json
// (final summary) — validated by tools/check_obs.py in CI. --quick skips
// the capacity probe and load sweep (phases 2–3) for the obs smoke test.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "control/streaming.hpp"
#include "core/closed_loop.hpp"
#include "fluidic/chamber_network.hpp"
#include "obs/obs.hpp"
#include "physics/medium.hpp"

namespace {

using namespace biochip;

constexpr int kGrid = 16;
constexpr std::size_t kChambers = 2;  // one inlet each
constexpr std::size_t kQuota = 3;
constexpr std::size_t kQueueCapacity = 4;

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

/// One self-contained chamber world (chambers must not share mutable state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<control::CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 99),
        defects(dev.array()) {}

  physics::ParticleBody prototype(const cell::ParticleSpec& spec) const {
    return {{0.0, 0.0, 0.0}, spec.radius, spec.density,
            spec.dep_prefactor(medium, dev.config().drive_frequency), 0};
  }

  control::ChamberSetup setup() {
    return {&cages, &engine, &imager, &defects, &bodies, cage_bodies, goals};
  }
};

/// One streaming arm: fresh worlds, `rate` mean arrivals per inlet-tick.
/// The cell mix pairs viable lymphocytes with same-footprint polystyrene
/// beads (identical 5 um imaging signature, different physics).
control::StreamingReport run_arm(const chip::DeviceConfig& cfg,
                                 const field::HarmonicCage& cage, double rate,
                                 int ticks, std::uint64_t seed,
                                 std::size_t max_parts, bool with_faults,
                                 std::vector<Vec3>* positions = nullptr,
                                 obs::Observer* obs = nullptr) {
  fluidic::ChamberNetwork net;
  fluidic::Microchamber geo;
  geo.length = cfg.cols * cfg.pitch;
  geo.width = cfg.rows * cfg.pitch;
  geo.height = cfg.chamber_height;
  for (std::size_t c = 0; c < kChambers; ++c) net.add_chamber(geo, kGrid, kGrid);
  for (int c = 0; c < static_cast<int>(kChambers); ++c) net.add_inlet(c, {1, 8});

  std::vector<std::unique_ptr<World>> worlds;
  for (std::size_t c = 0; c < kChambers; ++c)
    worlds.push_back(std::make_unique<World>(cfg, cage));

  control::StreamingConfig scfg;
  scfg.ticks = ticks;
  scfg.arrival_rates.assign(kChambers, rate);
  scfg.type_weights = {3.0, 1.0};
  scfg.body_prototypes = {worlds[0]->prototype(cell::viable_lymphocyte()),
                          worlds[0]->prototype(cell::polystyrene_bead(5e-6))};
  scfg.admission.queue_capacity = static_cast<int>(kQueueCapacity);
  scfg.admission.chamber_quota = static_cast<int>(kQuota);
  scfg.admission.degraded_quota = 1;
  scfg.service_deadline = 120;
  scfg.goal_sites.assign(kChambers, {{12, 4}, {12, 8}, {12, 12}});
  scfg.control.escape_rate = 1e-3;
  scfg.control.health.enabled = true;
  scfg.elide_idle_chambers = true;
  if (with_faults) {
    // Accumulating runtime degradation, held at a bounded density. The cap
    // keeps the worst-case quarantined-region growth (3 faults x a 3x3 ring)
    // near ~10% of the array — inside the health ladder's *degraded* rung
    // (throttled admissions) but below permanent quarantine, so a
    // million-tick soak degrades gracefully instead of shutting its inlets.
    scfg.faults.rates.electrode_silent_dead = 4e-4;
    scfg.faults.rates.electrode_dead = 2e-4;
    scfg.faults.rates.sensor_pixel_burst = 5e-4;
    scfg.faults.rates.sensor_row_dropout = 2e-4;
    scfg.faults.max_electrode_faults_per_chamber = 3;
    // Watchdog tuning for an open-ended horizon. Strikes expire (a dead
    // electrode re-strikes within any window; stray escapes and transient
    // sensor bursts must not permanently condemn sites on a million-tick
    // run), site quarantines serve a probation term instead of lasting
    // forever (false positives recover; a genuinely dead electrode re-earns
    // its quarantine from fresh strikes), and the quarantine rung sits well
    // above the ~10% of the array the capped dead electrodes legitimately
    // cost — so the designed steady state is *degraded*: throttled but
    // serving, with bounded blocked-fraction drift instead of a ratchet.
    scfg.control.health.strike_window = 600;
    scfg.control.health.quarantine_probation = 4000;
    scfg.control.health.suspect_after_losses = 3;
    scfg.control.health.quarantined_blocked_fraction = 0.30;
  }

  control::StreamingService service(net, scfg);
  std::vector<control::ChamberSetup> chambers;
  for (auto& w : worlds) chambers.push_back(w->setup());
  Rng rng(seed);
  const control::StreamingReport report =
      core::ClosedLoopTransporter::execute_streaming(service, chambers, rng,
                                                     max_parts, obs);
  if (positions != nullptr)
    for (const auto& w : worlds)
      for (const physics::ParticleBody& b : w->bodies)
        positions->push_back(b.position);
  return report;
}

bool gate(bool ok, const char* msg) {
  if (!ok) std::fprintf(stderr, "FAIL: %s\n", msg);
  return ok;
}

double shed_fraction(const control::StreamingReport& r) {
  return r.admission.offered == 0
             ? 0.0
             : static_cast<double>(r.admission.shed) /
                   static_cast<double>(r.admission.offered);
}

void print_arm(const char* name, double rate, const control::StreamingReport& r) {
  std::printf(
      "%-9s rate %.4f/inlet  ticks %7d  offered %5llu  shed %5.1f%%  "
      "delivered %5llu  evicted %3llu  cells/hour %7.1f  p50 %3d  p99 %3d "
      "ticks  peak in-flight %zu  peak bodies %zu\n",
      name, rate, r.ticks,
      static_cast<unsigned long long>(r.admission.offered),
      100.0 * shed_fraction(r), static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.evicted), r.cells_per_hour(0.4),
      r.latency_quantile(0.5), r.latency_quantile(0.99), r.peak_in_flight,
      r.peak_resident_bodies);
}

/// The gates every arm must pass, short run or million-tick soak alike.
bool check_arm(const char* name, const control::StreamingReport& r) {
  if (std::getenv("STREAM_TRACE") != nullptr)
    for (std::size_t c = 0; c < r.event_counts.size(); ++c)
      for (std::size_t k = 0; k < r.event_counts[c].size(); ++k)
        if (r.event_counts[c][k] != 0)
          std::fprintf(stderr, "%s chamber %zu %-20s %llu\n", name, c,
                       control::to_string(static_cast<control::EventKind>(k)),
                       static_cast<unsigned long long>(r.event_counts[c][k]));
  bool ok = true;
  // Exact conservation: every offered cell is shed, admitted, or still
  // queued; every admitted cell is delivered, evicted, or still in flight.
  ok &= gate(r.admission.offered ==
                 r.admission.shed + r.admission.admitted + r.queued_end,
             "offered-side accounting does not close");
  ok &= gate(r.admission.admitted == r.delivered + r.evicted + r.in_flight_end,
             "admitted-side accounting does not close (livelock?)");
  std::uint64_t hist_total = 0;
  for (std::uint64_t v : r.latency_hist) hist_total += v;
  ok &= gate(hist_total == r.delivered,
             "latency histogram does not hold exactly the delivered cells");
  // Typed load shedding: overload is audit events, never a silent drop.
  ok &= gate(control::count_events(r, control::EventKind::kAdmissionShed) ==
                 r.admission.shed,
             "shed count != kAdmissionShed events");
  // Bounded memory: residency never exceeds quota + watermarked queues.
  ok &= gate(r.peak_in_flight <= kQuota * kChambers + kQueueCapacity * kChambers,
             "peak in-flight exceeds quota + queue watermark");
  ok &= gate(r.peak_resident_bodies <= kQuota * kChambers,
             "peak resident bodies exceed the in-flight quota");
  ok &= gate(r.peak_cage_slots <= kQuota * kChambers,
             "peak cage slots exceed the in-flight quota");
  ok &= gate(r.in_flight_end <= kQuota * kChambers,
             "end-of-run in-flight exceeds the quota");
  // Zero livelock: the service kept delivering.
  ok &= gate(r.delivered > 0, "arm delivered nothing");
  if (!ok) std::fprintf(stderr, "FAIL: arm '%s' gates\n", name);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  long long soak_ticks = 2000;
  std::string obs_prefix;
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--obs=", 0) == 0) obs_prefix = arg.substr(6);
    else if (arg == "--quick") quick = true;
    else soak_ticks = std::atoll(arg.c_str());
  }
  if (soak_ticks <= 0 || soak_ticks > 1000000000LL) {
    std::fprintf(stderr,
                 "usage: %s [soak_ticks in 1..1e9] [--obs=PREFIX] [--quick]\n",
                 argv[0]);
    return 2;
  }

  // Telemetry (off unless --obs): attached to the soak arm below. The
  // snapshot period keeps JSONL output bounded on any horizon.
  std::optional<obs::Observer> observer;
  if (!obs_prefix.empty()) {
    obs::ObsConfig ocfg;
    ocfg.enabled = true;
    ocfg.snapshot_period = 500;
    ocfg.metrics_path = obs_prefix + ".metrics.jsonl";
    ocfg.trace_path = obs_prefix + ".trace.json";
    ocfg.summary_path = obs_prefix + ".summary.json";
    ocfg.label = "streaming_chamber_service";
    observer.emplace(std::move(ocfg));
  }

  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = kGrid;
  cfg.rows = kGrid;
  const field::HarmonicCage cage = chip::BiochipDevice(cfg).calibrate_cage(5, 6);

  bool ok = true;

  // ---- 1. serial vs pooled bitwise identity at a sustainable load --------
  std::vector<Vec3> serial_pos, pooled_pos;
  const control::StreamingReport serial =
      run_arm(cfg, cage, 0.12, 400, 90210, 1, true, &serial_pos);
  const control::StreamingReport pooled =
      run_arm(cfg, cage, 0.12, 400, 90210, 0, true, &pooled_pos);
  ok &= gate(serial == pooled && serial_pos == pooled_pos,
             "serial vs pooled streaming run mismatch");
  ok &= check_arm("identity", serial);
  std::printf("identity  serial == pooled over %d ticks (%llu offered, %llu "
              "delivered, %llu faults)\n",
              serial.ticks,
              static_cast<unsigned long long>(serial.admission.offered),
              static_cast<unsigned long long>(serial.delivered),
              static_cast<unsigned long long>(serial.injected_faults));

  // ---- 2. capacity probe: saturate the inlets ----------------------------
  // --quick (the CI obs smoke) skips the probe + sweep and soaks at the
  // identity arm's sustainable rate instead.
  double capacity = 0.12 * static_cast<double>(kChambers);
  if (!quick) {
    const int sweep_ticks = 2000;
    const control::StreamingReport probe =
        run_arm(cfg, cage, 1.0, sweep_ticks, 1001, 0, false);
    ok &= check_arm("probe", probe);
    capacity =  // sustained service rate, cells/tick, whole chip
        static_cast<double>(probe.delivered) / static_cast<double>(probe.ticks);
    ok &= gate(capacity > 0.0, "capacity probe delivered nothing");
    print_arm("probe", 1.0, probe);
    if (capacity <= 0.0) return 1;

    // ---- 3. offered-load sweep: 0.5x / 1.0x / scripted 2.0x capacity -----
    struct SweepArm {
      const char* name;
      double factor;
      std::uint64_t seed;
    };
    const SweepArm arms[] = {{"half", 0.5, 3001}, {"match", 1.0, 3002},
                             {"overload", 2.0, 3003}};
    double half_shed = 0.0, overload_shed = 0.0;
    std::uint64_t overload_sheds = 0, overload_deferrals = 0;
    for (const SweepArm& arm : arms) {
      const double rate = arm.factor * capacity / static_cast<double>(kChambers);
      const control::StreamingReport r =
          run_arm(cfg, cage, rate, sweep_ticks, arm.seed, 0, false);
      print_arm(arm.name, rate, r);
      ok &= check_arm(arm.name, r);
      if (arm.factor == 0.5) half_shed = shed_fraction(r);
      if (arm.factor == 2.0) {
        overload_shed = shed_fraction(r);
        overload_sheds = r.admission.shed;
        overload_deferrals = r.admission.deferrals;
      }
    }
    // Shed-fraction sanity at 2x overload: the chip sheds a real fraction of
    // the offered stream — typed, bounded, and more than at half load.
    ok &= gate(overload_sheds > 0 && overload_deferrals > 0,
               "2x overload produced no typed shed/deferral events");
    ok &= gate(overload_shed >= 0.10 && overload_shed <= 0.95,
               "2x overload shed fraction outside [0.10, 0.95]");
    ok &= gate(overload_shed >= half_shed,
               "shed fraction not monotone in offered load");
  }

  // ---- 4. long-horizon soak at 1.0x capacity with accumulating faults ----
  const double soak_rate = capacity / static_cast<double>(kChambers);
  const control::StreamingReport soak = run_arm(
      cfg, cage, soak_rate, static_cast<int>(soak_ticks), 777, 0, true,
      nullptr, observer.has_value() ? &*observer : nullptr);
  print_arm("soak", soak_rate, soak);
  std::printf("soak      final health:");
  for (std::size_t c = 0; c < soak.health.size(); ++c)
    std::printf(" chamber %zu %s", c, control::to_string(soak.health[c]));
  std::printf("  injected faults %llu\n",
              static_cast<unsigned long long>(soak.injected_faults));
  ok &= check_arm("soak", soak);  // same residency bounds as the short arms

  // ---- telemetry export + registry-vs-report closure -----------------------
  if (observer.has_value()) {
    observer->finalize(soak.ticks);
    const obs::MetricsRegistry& reg = observer->metrics();
    const obs::Metric* delivered = reg.find("service.delivered");
    const obs::Metric* offered = reg.find("admission.offered");
    const obs::Metric* shed = reg.find("admission.shed");
    ok &= gate(delivered != nullptr && delivered->value == soak.delivered,
               "obs delivered counter != streaming report");
    ok &= gate(offered != nullptr && offered->value == soak.admission.offered,
               "obs offered counter != streaming report");
    ok &= gate(shed != nullptr && shed->value == soak.admission.shed,
               "obs shed counter != streaming report");
    const obs::Metric* hist = reg.find("service.latency_ticks");
    std::uint64_t hist_total = 0;
    if (hist != nullptr)
      for (std::uint64_t b : hist->buckets) hist_total += b;
    ok &= gate(hist != nullptr && hist_total == soak.delivered,
               "obs latency histogram does not hold the delivered cells");
    std::printf("obs       wrote %s.{metrics.jsonl,trace.json,summary.json} "
                "(%zu metrics)\n",
                obs_prefix.c_str(), reg.size());
  }

  return ok ? 0 : 1;
}
