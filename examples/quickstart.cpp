// Quickstart: build the paper's device, load a few cells, image them, trap
// one in a DEP cage, and drag it across the array — the complete single-cell
// manipulation loop of Manaresi et al. (DATE 2005) in ~60 lines of API.
//
// Run:  ./quickstart

#include <iostream>

#include "cell/library.hpp"
#include "common/table.hpp"
#include "core/platform.hpp"

using namespace biochip;

int main() {
  // 1. The platform: paper-scale chip (0.35 µm CMOS, 20 µm pitch, 100 µm
  //    chamber) — shrunk to a 64x64 tile so the demo runs instantly.
  core::PlatformConfig config = core::PlatformConfig::paper_defaults();
  config.device.cols = 64;
  config.device.rows = 64;
  config.seed = 7;
  core::LabOnChipPlatform lab(config);

  std::cout << "Device: " << lab.device().array().electrode_count()
            << " electrodes, " << lab.device().chamber_volume() * 1e9
            << " ul chamber, cage levitates at "
            << lab.unit_cage().center.z * 1e6 << " um\n";

  // 2. Pipette a sample: five viable lymphocytes, sedimented on the chip.
  lab.load_sample({{cell::viable_lymphocyte(), 5, 0.05}});

  // 3. Image the chamber with 64-frame averaging and detect the cells.
  const auto detections = lab.detect_cells(64);
  std::cout << "Detected " << detections.size() << " cells in "
            << lab.acquisition_time(64) * 1e3 << " ms of sensor time\n";
  for (const auto& d : detections)
    std::cout << "  cell at (" << d.position.x * 1e6 << ", " << d.position.y * 1e6
              << ") um, |dC| = " << d.score * 1e18 << " aF\n";

  // 4. Trap cell #0 in a DEP cage.
  const auto cage = lab.trap_cell(0);
  if (!cage) {
    std::cerr << "trap failed (pDEP particle or occupied site)\n";
    return 1;
  }
  const GridCoord from = lab.cages().site(*cage);
  std::cout << "Cell 0 caged at " << from << "\n";

  // 5. Drag it 12 pitches away at 50 um/s, physics-in-the-loop.
  const GridCoord to{from.col < 32 ? from.col + 12 : from.col - 12, from.row};
  const core::MoveResult mv = lab.move_cell(*cage, to);

  Table report({"metric", "value"});
  report.row().cell("move succeeded").cell(mv.success ? "yes" : "no");
  report.row().cell("cage steps").cell(static_cast<int>(mv.tow.steps));
  report.row().cell("manipulation time [s]").cell(mv.tow.elapsed, 2);
  report.row().cell("worst trap lag [um]").cell(mv.tow.max_lag * 1e6, 2);
  report.row().cell("electronics time [us]").cell(mv.electronics_time * 1e6, 2);
  report.row().cell("headroom (motion/electronics)").cell(
      mv.tow.elapsed / mv.electronics_time, 0);
  report.print(std::cout);

  std::cout << "\nThe paper's point C3, live: the cage crawled for "
            << mv.tow.elapsed << " s while the chip spent "
            << mv.electronics_time * 1e6 << " us reprogramming itself.\n";
  return mv.success ? 0 : 1;
}
