// Multi-chamber sorting: per-chamber supervisors + shared transfer
// arbitration on a 3-chamber lab-on-chip chain. Each 16x16-site chamber
// carries ~2% defective pixels and runs its own closed loop (sense → track →
// replan → actuate); cross-chamber deliveries tow the cage to a fluidic
// transfer port, raise a TransferRequest, and the destination chamber
// admits, routes through its own reservation table, and supervises the final
// leg — denying with backoff while the port neighborhood is congested. The
// open-loop baseline executes the same plans and blind hand-offs without
// feedback and loses cells; the whole multi-chamber episode is bitwise
// reproducible across serial and pooled chamber execution.
//
// Run:  ./multi_chamber_sorting

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/table.hpp"
#include "core/closed_loop.hpp"
#include "fluidic/chamber_network.hpp"
#include "physics/medium.hpp"

using namespace biochip;

namespace {

constexpr int kSide = 16;
constexpr int kChambers = 3;

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

// One self-contained chamber world (chambers must not share mutable state).
struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<control::CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 7),
        defects(dev.array()) {}

  int add_cell(GridCoord site) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius,
                      spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    return id;
  }

  void keep_usable(GridCoord site) {
    for (int dr = -1; dr <= 1; ++dr)
      for (int dc = -1; dc <= 1; ++dc)
        defects.set_state({site.col + dc, site.row + dr}, chip::PixelState::kOk);
  }

  control::ChamberSetup setup() {
    return {&cages, &engine, &imager, &defects, &bodies, cage_bodies, goals};
  }
};

struct Scenario {
  std::vector<std::unique_ptr<World>> worlds;
  std::vector<control::ChamberSetup> chambers;
  std::vector<control::TransferGoal> transfers;
  std::size_t goal_count = 0;
};

// 3-chamber chain: two cross-chamber transfers (0→1, 1→2) plus one local
// delivery per chamber, ~2% defective pixels per chamber, one scripted
// escape on a transfer cage and a small random escape rate.
Scenario make_scenario(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage) {
  Scenario s;
  for (int c = 0; c < kChambers; ++c) {
    s.worlds.push_back(std::make_unique<World>(cfg, cage));
    World& w = *s.worlds.back();
    Rng defect_rng(600 + static_cast<std::uint64_t>(c));
    w.defects = chip::sample_defects(w.dev.array(), 0.02, defect_rng);
    w.keep_usable({14, 8});  // port sites of the chain
    w.keep_usable({1, 8});
  }
  // Local deliveries (one per chamber).
  for (int c = 0; c < kChambers; ++c) {
    World& w = *s.worlds[static_cast<std::size_t>(c)];
    w.keep_usable({3, 3});
    w.keep_usable({12, 12});
    const int id = w.add_cell({3, 3});
    w.goals.push_back({id, {12, 12}});
    ++s.goal_count;
  }
  // Cross-chamber transfers: chamber 0 → 1 and 1 → 2.
  for (int c = 0; c + 1 < kChambers; ++c) {
    World& src = *s.worlds[static_cast<std::size_t>(c)];
    World& dst = *s.worlds[static_cast<std::size_t>(c) + 1];
    src.keep_usable({3, 8});
    dst.keep_usable({11, 8});
    const int id = src.add_cell({3, 8});
    s.transfers.push_back({c, id, c + 1, {11, 8}});
    ++s.goal_count;
  }
  for (auto& w : s.worlds) s.chambers.push_back(w->setup());
  return s;
}

fluidic::ChamberNetwork make_network(const chip::DeviceConfig& cfg) {
  fluidic::ChamberNetwork net;
  fluidic::Microchamber geo;
  geo.length = cfg.cols * cfg.pitch;
  geo.width = cfg.rows * cfg.pitch;
  geo.height = cfg.chamber_height;
  for (int c = 0; c < kChambers; ++c) net.add_chamber(geo, kSide, kSide);
  for (int c = 0; c + 1 < kChambers; ++c)
    net.add_port(c, {14, 8}, c + 1, {1, 8}, 500e-6, 60e-6);
  return net;
}

std::size_t delivered_total(const control::OrchestratorReport& r) {
  std::size_t n = r.delivered_transfers.size();
  for (const control::EpisodeReport& c : r.chambers) n += c.delivered_ids.size();
  return n;
}

}  // namespace

int main() {
  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = kSide;
  cfg.rows = kSide;
  const field::HarmonicCage cage = chip::BiochipDevice(cfg).calibrate_cage(5, 6);
  const fluidic::ChamberNetwork net = make_network(cfg);

  control::OrchestratorConfig base;
  base.control.defect_aware_initial = false;  // same blind plans as the baseline
  base.control.escape_rate = 0.002;
  // Scripted losses at tick 5 on cage id 1 — the transfer cage of chambers
  // 0 and 1 (cage ids are per chamber; chamber 2 has no cage 1).
  base.control.forced_escapes = {{5, 1}};

  // The fluidic side of the same topology: port channel flow under 2 mbar.
  fluidic::HydraulicNetwork hyd = net.hydraulics(physics::dep_buffer());
  hyd.set_pressure(0, 200.0);
  hyd.set_pressure(kChambers - 1, 0.0);
  const auto flow = hyd.solve();
  std::cout << "3-chamber chain, " << net.port_count() << " transfer ports; "
            << "port channel flow at 2 mbar head: " << flow.channel_flow[0] * 1e12
            << " pl/s\n\n";

  Table t({"mode", "delivered", "handoffs", "denials", "ticks", "ticks/s"});
  control::OrchestratorReport reports[2];
  for (const bool closed : {false, true}) {
    Scenario s = make_scenario(cfg, cage);
    control::OrchestratorConfig config = base;
    config.control.closed_loop = closed;
    control::Orchestrator orch(net, config);
    Rng rng(90210);
    const auto t0 = std::chrono::steady_clock::now();
    const control::OrchestratorReport report =
        core::ClosedLoopTransporter::execute_orchestrated(orch, s.chambers,
                                                          s.transfers, rng);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    reports[closed ? 1 : 0] = report;
    t.row()
        .cell(closed ? "closed loop" : "open loop")
        .cell(std::to_string(delivered_total(report)) + "/" +
              std::to_string(s.goal_count))
        .cell(std::to_string(report.admissions) + "/" +
              std::to_string(report.transfers.size()))
        .cell(static_cast<int>(report.denials))
        .cell(report.ticks)
        .cell(static_cast<double>(report.ticks) / wall, 1);
  }
  t.print(std::cout);

  std::cout << "\nClosed-loop transfer audit (chamber logs):\n";
  for (std::size_t c = 0; c < reports[1].chambers.size(); ++c)
    for (const control::ControlEvent& e : reports[1].chambers[c].events)
      if (e.kind == control::EventKind::kTransferRequested ||
          e.kind == control::EventKind::kTransferAdmitted ||
          e.kind == control::EventKind::kTransferDenied ||
          e.kind == control::EventKind::kCellLost ||
          e.kind == control::EventKind::kCellRecaptured)
        std::cout << "  chamber " << c << ": " << e << "\n";

  // Determinism: pooled chamber fan-out must reproduce the serial reference
  // bit for bit (disjoint per-chamber fork-stream spaces + serial
  // arbitration).
  std::vector<Vec3> positions[2];
  for (const std::size_t parts : {std::size_t{1}, std::size_t{0}}) {
    Scenario s = make_scenario(cfg, cage);
    control::Orchestrator orch(net, base);
    Rng rng(90210);
    core::ClosedLoopTransporter::execute_orchestrated(orch, s.chambers, s.transfers,
                                                      rng, parts);
    for (const auto& w : s.worlds)
      for (const physics::ParticleBody& b : w->bodies)
        positions[parts].push_back(b.position);
  }
  const bool bitwise = positions[0] == positions[1];
  std::cout << "\nSerial vs pooled chamber execution bitwise identical: "
            << (bitwise ? "yes" : "NO") << "\n";

  const std::size_t open_delivered = delivered_total(reports[0]);
  const std::size_t closed_delivered = delivered_total(reports[1]);
  const std::size_t handoffs = reports[1].delivered_transfers.size();
  std::cout << "Open loop delivers " << open_delivered << ", closed loop "
            << closed_delivered << " of 5 goals; " << handoffs
            << "/2 cross-chamber handoffs delivered.\n";
  return (bitwise && handoffs >= 1 && closed_delivered > open_delivered &&
          closed_delivered >= 4)
             ? 0
             : 1;
}
