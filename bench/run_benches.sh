#!/usr/bin/env bash
# Build the Release bench suite and emit machine-readable perf records for
# the tier-1 hot paths, so every PR leaves a perf trajectory to compare
# against (see docs/perf.md for methodology).
#
# Usage: bench/run_benches.sh [extra google-benchmark flags...]
# Output: BENCH_field_solver.json, BENCH_physics_engine.json,
#         BENCH_control.json at the repo root.
#
# Accuracy column: the solver records are not timing-only — bm_vcycle_warm
# and bm_incremental carry an `oracle_max_err` counter (max-|dphi| of the
# benched solution against a freshly solved full-grid oracle) so the perf
# trajectory can never trade correctness for speed silently. bm_incremental
# also records `window_fraction`, the mean dirty-window volume over the
# full-grid volume (the per-tick work ratio behind its speedup).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
MIN_TIME=${MIN_TIME:-0.2}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DBIOCHIP_BENCH=ON \
  -DBIOCHIP_EXAMPLES=OFF

# Hard Release guard: a stale BUILD_DIR keeps its cached build type, and
# Debug/unset numbers silently poison the BENCH_*.json perf trajectory.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")
if [ "$build_type" != "Release" ]; then
  echo "error: $BUILD_DIR is configured as '${build_type:-<unset>}', not" \
    "Release — delete it (or set BUILD_DIR) and rerun" >&2
  exit 1
fi
echo "library_build_type=$build_type ($BUILD_DIR)"

cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_field_solver bench_physics_engine bench_control

for bench in bench_field_solver bench_physics_engine bench_control; do
  out="BENCH_${bench#bench_}.json"
  "$BUILD_DIR/$bench" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_context=library_build_type="$build_type" \
    "$@"
  echo "wrote $out (library_build_type=$build_type)"
done
