// Experiment C1 — "An array of more than 100,000 electrodes is programmed to
// create electric fields in a drop of liquid (~4µl) on top of the chip, thus
// creating tens of thousands of dielectrophoretic (DEP) cages which can trap
// cells in levitation." (paper §1)
//
// Reproduces the paper-scale device inventory and sweeps the floorplan to
// show how capability scales with array size, then times the scale-relevant
// operations with google-benchmark.

#include <benchmark/benchmark.h>

#include <iostream>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "physics/dep.hpp"
#include "physics/levitation.hpp"
#include "physics/medium.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

void print_scale_table() {
  print_banner(std::cout, "C1: paper-scale device inventory (paper S1 claims)");
  const chip::BiochipDevice dev = chip::paper_device();
  const field::HarmonicCage cage = dev.calibrate_cage(5, 6);
  const physics::Medium medium = physics::dep_buffer();
  const cell::ParticleSpec cell = cell::viable_lymphocyte();
  const double prefactor = cell.dep_prefactor(medium, dev.config().drive_frequency);
  const physics::LevitationResult lev =
      physics::levitation_equilibrium(cage, prefactor, medium, cell.radius, cell.density);

  Table t({"quantity", "paper", "this model"});
  t.row().cell("electrodes").cell(">100,000").cell(
      std::to_string(dev.array().electrode_count()));
  t.row().cell("sample volume").cell("~4 ul").cell(si_format(dev.chamber_volume() * 1e3,
                                                             "l"));
  t.row().cell("DEP cages (lattice, 2-pitch)").cell("tens of thousands").cell(
      std::to_string(dev.cage_capacity(2)));
  t.row().cell("cells trapped in levitation").cell("yes").cell(
      lev.stable ? "yes (stable)" : "NO");
  t.row().cell("levitation height").cell("-").cell_si(lev.height, "m");
  t.row().cell("trap stiffness (radial)").cell("-").cell_si(lev.stiffness_r, "N/m");
  t.row().cell("pattern memory").cell("-").cell_si(
      static_cast<double>(dev.config().programming.pattern_memory_bits(dev.array())),
      "bit");
  t.row().cell("pixel fits pitch (0.35um)").cell("yes").cell(dev.pixel_fits() ? "yes"
                                                                              : "NO");
  t.print(std::cout);
}

void print_floorplan_sweep() {
  print_banner(std::cout, "C1: capability vs array size (20 um pitch, 100 um gap)");
  Table t({"array", "electrodes", "volume [ul]", "cages", "program time [ms]",
           "core area [mm2]"});
  for (int side : {64, 128, 256, 320, 512, 1024}) {
    chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
    cfg.cols = side;
    cfg.rows = side;
    const chip::BiochipDevice dev(cfg);
    t.row()
        .cell(std::to_string(side) + "x" + std::to_string(side))
        .cell(std::to_string(dev.array().electrode_count()))
        .cell(dev.chamber_volume() * 1e9, 2)
        .cell(std::to_string(dev.cage_capacity(2)))
        .cell(cfg.programming.full_program_time(dev.array()) * 1e3, 3)
        .cell(dev.core_area() * 1e6, 1);
  }
  t.print(std::cout);
  std::cout << "\nShape check: cage capacity ~ electrodes/4 (2-pitch lattice); the\n"
               "320x320 paper device crosses the 100k-electrode / ~4 ul / >20k-cage\n"
               "marks simultaneously, as §1 claims.\n";
}

void bm_cage_lattice(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  for (auto _ : state) {
    auto lattice = chip::cage_lattice(array, 2);
    benchmark::DoNotOptimize(lattice.sites.data());
  }
  state.SetLabel(std::to_string(chip::cage_lattice(array, 2).sites.size()) + " cages");
}

void bm_pattern_diff(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  const chip::ActuationPattern a = chip::cage_lattice(array, 2).pattern;
  const chip::ActuationPattern b = chip::background(array);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.diff_count(b));
  }
}

void bm_cage_calibration(benchmark::State& state) {
  const chip::BiochipDevice dev = chip::paper_device();
  // Shared workspace: repeated calibrations on one patch shape re-derive the
  // multigrid hierarchy only once (the whole-array sweep pattern).
  field::MultigridWorkspace workspace;
  for (auto _ : state) {
    field::HarmonicCage cage =
        dev.calibrate_cage(5, static_cast<int>(state.range(0)), &workspace);
    benchmark::DoNotOptimize(cage.c_r);
  }
}

BENCHMARK(bm_cage_lattice)->Arg(128)->Arg(320)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_pattern_diff)->Arg(320)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_cage_calibration)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_scale_table();
  print_floorplan_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
