// Experiment C2 — "latest generation technologies have a reduced supply
// voltage while actuation (DEP force dependent on voltage square) and
// sensing (signal dynamic range) benefit from a larger supply voltage ...
// older generation technologies may best fit your purpose." (paper §2)
//
// Sweeps the CMOS node catalog on the fixed 320x320 / 20 µm floorplan and
// reports actuation strength, manipulation speed bound, sensing dynamic
// range, and pixel feasibility per node. The "winner" column shows the
// paper's conclusion emerging: the best chip is the OLDEST node whose pixel
// still fits the pitch (0.35 µm — exactly the node the authors used).

#include <benchmark/benchmark.h>

#include <iostream>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "physics/dep.hpp"
#include "physics/levitation.hpp"
#include "physics/medium.hpp"
#include "sensor/capacitive.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

struct NodeReport {
  chip::CmosNode node;
  bool fits = false;
  double trap_stiffness = 0.0;
  double max_speed = 0.0;
  double snr_gain_db = 0.0;
  bool levitates = false;
};

// `workspace` batches the per-node calibration solves through one shared
// multigrid hierarchy: the floorplan (and thus the patch grid and Dirichlet
// mask) is identical across the node sweep, so only the first device pays
// the hierarchy/RAP build.
NodeReport evaluate_node(const chip::CmosNode& node,
                         field::MultigridWorkspace* workspace = nullptr) {
  NodeReport r;
  r.node = node;
  const chip::DeviceConfig cfg = chip::paper_config_on_node(node);
  const chip::BiochipDevice dev(cfg);
  r.fits = dev.pixel_fits();

  const field::HarmonicCage cage = dev.calibrate_cage(5, 6, workspace);
  const physics::Medium medium = physics::dep_buffer();
  const cell::ParticleSpec cell = cell::viable_lymphocyte();
  const double prefactor = cell.dep_prefactor(medium, cfg.drive_frequency);
  r.trap_stiffness = physics::trap_stiffness(cage, prefactor).radial;
  r.max_speed = physics::max_tow_speed(cage, prefactor, 30.0_um, medium, cell.radius);
  r.levitates = physics::levitation_equilibrium(cage, prefactor, medium, cell.radius,
                                                cell.density)
                    .stable;

  // Sensing dynamic range: signal scales with the sense voltage; noise floor
  // is fixed -> SNR gain relative to a 1 V front end (in dB).
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = cfg.chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  sensor::CapacitivePixel ref = px;
  ref.sense_voltage = 1.0;
  r.snr_gain_db = 20.0 * std::log10(px.single_frame_snr(5.0_um, 6.0_um, 298.15) /
                                    ref.single_frame_snr(5.0_um, 6.0_um, 298.15));
  return r;
}

void print_node_sweep() {
  print_banner(std::cout,
               "C2: CMOS node sweep, fixed 320x320 / 20 um floorplan (paper S2)");
  Table t({"node", "year", "VDD [V]", "pixel fits", "trap k_r [N/m]",
           "v_max [um/s]", "sense gain [dB]", "levitates", "verdict"});
  double best_speed = 0.0;
  std::string best_node;
  std::vector<NodeReport> reports;
  field::MultigridWorkspace workspace;  // shared across the whole-array sweep
  for (const chip::CmosNode& node : chip::node_catalog()) {
    const NodeReport r = evaluate_node(node, &workspace);
    reports.push_back(r);
    if (r.fits && r.max_speed > best_speed) {
      best_speed = r.max_speed;
      best_node = node.name;
    }
  }
  for (const NodeReport& r : reports) {
    std::string verdict;
    if (!r.fits) {
      verdict = "pixel too big";
    } else if (r.node.name == best_node) {
      verdict = "BEST (oldest that fits)";
    } else {
      verdict = "feasible";
    }
    t.row()
        .cell(r.node.name)
        .cell(r.node.year)
        .cell(r.node.supply, 1)
        .cell(r.fits ? "yes" : "no")
        .cell(r.trap_stiffness, 3)
        .cell(r.max_speed * 1e6, 1)
        .cell(r.snr_gain_db, 1)
        .cell(r.levitates ? "yes" : "no")
        .cell(verdict);
  }
  t.print(std::cout);
  std::cout << "\nShape check: v_max and trap stiffness fall ~V^2 from 5 V-class nodes\n"
               "to 1 V-class nodes (~25x); every node from 0.35 um down fits the\n"
               "pixel, so the optimum is the oldest fitting node — the paper's\n"
               "0.35 um/3.3 V choice. Newer nodes only lose actuation and dynamic\n"
               "range on this cell-pitch-locked floorplan.\n";
}

void print_v2_law() {
  print_banner(std::cout, "C2: force ∝ V² law (fixed geometry)");
  Table t({"drive [V]", "trap k_r [N/m]", "k_r / k_r(1V)"});
  const physics::Medium medium = physics::dep_buffer();
  const cell::ParticleSpec cell = cell::viable_lymphocyte();
  double base = 0.0;
  field::MultigridWorkspace workspace;  // same geometry at every drive voltage
  for (double v : {1.0, 1.8, 2.5, 3.3, 5.0}) {
    chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
    cfg.drive_amplitude = v;
    const chip::BiochipDevice dev(cfg);
    const field::HarmonicCage cage = dev.calibrate_cage(5, 6, &workspace);
    const double k =
        physics::trap_stiffness(cage, cell.dep_prefactor(medium, cfg.drive_frequency))
            .radial;
    if (base == 0.0) base = k;
    t.row().cell(v, 1).cell(k, 3).cell(k / base, 2);
  }
  t.print(std::cout);
}

void bm_node_evaluation(benchmark::State& state) {
  const auto nodes = chip::node_catalog();
  const chip::CmosNode node = nodes[static_cast<std::size_t>(state.range(0))];
  field::MultigridWorkspace workspace;
  for (auto _ : state) {
    NodeReport r = evaluate_node(node, &workspace);
    benchmark::DoNotOptimize(r.max_speed);
  }
  state.SetLabel(node.name);
}

BENCHMARK(bm_node_evaluation)->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_node_sweep();
  print_v2_law();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
