// Experiment P-1 — particle-dynamics engine: the 10-100 µm/s manipulation
// band (paper §2) measured physics-in-the-loop (retention vs tow speed),
// plus engine throughput for population-scale simulation.

#include <benchmark/benchmark.h>

#include <iostream>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/simulation.hpp"
#include "physics/dep.hpp"
#include "physics/medium.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

struct Rig {
  chip::BiochipDevice device;
  physics::Medium medium;
  field::HarmonicCage cage;
  core::ManipulationEngine engine;

  Rig()
      : device([] {
          chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
          cfg.cols = 64;
          cfg.rows = 64;
          return cfg;
        }()),
        medium(physics::dep_buffer()),
        cage(device.calibrate_cage(5, 6)),
        engine(device, medium, cage, 30.0_um) {}

  physics::ParticleBody cell_at(GridCoord site, const cell::ParticleSpec& spec) {
    return {engine.field_model().trap_center(site), spec.radius, spec.density,
            spec.dep_prefactor(medium, device.config().drive_frequency), 0};
  }
};

void print_retention_vs_speed() {
  print_banner(std::cout,
               "P-1: cage tow retention vs speed (paper band: 10-100 um/s)");
  Rig rig;
  const cell::ParticleSpec spec = cell::viable_lymphocyte();
  const double theory_vmax = physics::max_tow_speed(
      rig.cage, spec.dep_prefactor(rig.medium, rig.device.config().drive_frequency),
      30.0_um, rig.medium, spec.radius);

  Table t({"tow speed [um/s]", "retained (8 trials)", "max lag [um]"});
  for (double speed : {10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    int retained = 0;
    double worst_lag = 0.0;
    for (int trial = 0; trial < 8; ++trial) {
      physics::ParticleBody cell = rig.cell_at({10, 10}, spec);
      std::vector<GridCoord> path;
      for (int c = 10; c <= 30; ++c) path.push_back({c, 10});
      Rng rng(static_cast<std::uint64_t>(trial) + 1);
      const core::TowReport rep =
          rig.engine.tow(cell, path, 20.0_um / (speed * 1e-6), rng);
      if (rep.retained) ++retained;
      worst_lag = std::max(worst_lag, rep.max_lag);
    }
    t.row()
        .cell(speed, 0)
        .cell(std::to_string(retained) + "/8")
        .cell(worst_lag * 1e6, 1);
  }
  t.print(std::cout);
  std::cout << "\nTheory bound (holding force / drag): "
            << si_format(theory_vmax, "m/s")
            << ". Shape check: retention holds through the paper's 10-100 um/s\n"
               "band and collapses near the theoretical limit.\n";
}

void print_cell_type_speeds() {
  print_banner(std::cout, "P-1: max tow speed by particle type (calibrated cage)");
  Rig rig;
  Table t({"particle", "radius [um]", "ReK @100kHz", "v_max [um/s]"});
  for (const cell::ParticleSpec& spec : cell::standard_library()) {
    const double rek = spec.re_k(rig.medium, 100.0_kHz);
    const double pref = spec.dep_prefactor(rig.medium, 100.0_kHz);
    const double vmax =
        pref < 0.0
            ? physics::max_tow_speed(rig.cage, pref, 30.0_um, rig.medium, spec.radius)
            : 0.0;
    t.row()
        .cell(spec.name)
        .cell(spec.radius * 1e6, 1)
        .cell(rek, 3)
        .cell(vmax * 1e6, 1);
  }
  t.print(std::cout);
  std::cout << "\nShape check: nDEP particles tow at tens-to-hundreds of um/s\n"
               "(faster for large cells: force ~R^3 beats drag ~R); pDEP particles\n"
               "(v_max = 0 rows) cannot be caged at this frequency.\n";
}

void bm_integrator_throughput(benchmark::State& state) {
  Rig rig;
  const cell::ParticleSpec spec = cell::viable_lymphocyte();
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<physics::ParticleBody> bodies;
  std::vector<GridCoord> sites;
  for (std::size_t i = 0; i < n; ++i) {
    const GridCoord site{static_cast<int>(4 + 4 * (i % 14)),
                         static_cast<int>(4 + 4 * (i / 14))};
    bodies.push_back(rig.cell_at(site, spec));
    sites.push_back(site);
  }
  rig.engine.field_model().set_sites(sites);
  physics::OverdampedIntegrator& integ = rig.engine.integrator();
  Rng rng(3);
  const auto& model = rig.engine.field_model();
  for (auto _ : state) {
    integ.advance(bodies, [&](Vec3 p) { return model.grad_erms2(p); }, rng, 10);
    benchmark::DoNotOptimize(bodies.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10 *
                          static_cast<std::int64_t>(n));
}

// Per-substep cost vs live cage count at a FIXED particle population: with
// the O(1) spatial-hash trap lookup the cost must stay flat as the active
// array grows 16 -> 1024 cages (the paper's whole-array regime). The 16
// tracked traps (and the particles in them) are identical for every arg so
// only the background occupancy varies; the seed's linear scan degraded
// with every background cage.
void bm_grad_cage_scaling(benchmark::State& state) {
  Rig rig;
  const cell::ParticleSpec spec = cell::viable_lymphocyte();
  const auto ncages = static_cast<std::size_t>(state.range(0));
  std::vector<GridCoord> sites;
  for (std::size_t i = 0; i < 16; ++i)
    sites.push_back({static_cast<int>(2 * (i % 4)), static_cast<int>(2 * (i / 4))});
  for (std::size_t i = 0; sites.size() < ncages; ++i) {
    const GridCoord site{static_cast<int>(2 * (i % 32)), static_cast<int>(2 * (i / 32))};
    if (site.col >= 8 || site.row >= 8) sites.push_back(site);
  }
  rig.engine.field_model().set_sites(sites);
  constexpr std::size_t kBodies = 64;
  std::vector<physics::ParticleBody> bodies;
  for (std::size_t i = 0; i < kBodies; ++i)
    bodies.push_back(rig.cell_at(sites[i % 16], spec));
  physics::OverdampedIntegrator& integ = rig.engine.integrator();
  Rng rng(3);
  const auto& model = rig.engine.field_model();
  for (auto _ : state) {
    integ.advance(bodies, [&](Vec3 p) { return model.grad_erms2(p); }, rng, 10);
    benchmark::DoNotOptimize(bodies.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10 *
                          static_cast<std::int64_t>(kBodies));
}

void bm_tow_simulation(benchmark::State& state) {
  Rig rig;
  const cell::ParticleSpec spec = cell::viable_lymphocyte();
  for (auto _ : state) {
    physics::ParticleBody cell = rig.cell_at({10, 10}, spec);
    std::vector<GridCoord> path;
    for (int c = 10; c <= 20; ++c) path.push_back({c, 10});
    Rng rng(9);
    core::TowReport rep = rig.engine.tow(cell, path, 0.4, rng);
    benchmark::DoNotOptimize(rep.retained);
  }
}

BENCHMARK(bm_integrator_throughput)
    ->Arg(10)
    ->Arg(100)
    ->Arg(196)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_grad_cage_scaling)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_tow_simulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_retention_vs_speed();
  print_cell_type_speeds();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
