// Experiment C5 — the paper's central methodological claim (Figs. 1 & 2):
// electronics should be designed simulate-first; fluidic packaging should be
// designed fabricate-first, because "it is often faster to build and test a
// prototype than to simulate it" while simulation "has a role in helping the
// designer with better understanding of test results".
//
// Monte-Carlo comparison of both flows in both habitats, plus the crossover
// sweep over fabrication turnaround and simulation fidelity.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "flow/centering.hpp"
#include "flow/montecarlo.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

constexpr std::size_t kTrials = 4000;

void print_habitat_comparison() {
  print_banner(std::cout, "C5: Fig.1 (simulate-first) vs Fig.2 (fabricate-first)");
  Table t({"habitat", "flow", "time-to-spec p50 [d]", "p90 [d]", "cost [kEUR]",
           "fab runs", "sim runs", "winner?"});
  for (const flow::FlowParameters& params :
       {flow::cmos_flow_parameters(), flow::fluidic_flow_parameters()}) {
    const flow::FlowComparison cmp = flow::compare_flows(params, kTrials, 11);
    for (const flow::FlowStats* s : {&cmp.simulate_first, &cmp.fabricate_first}) {
      t.row()
          .cell(params.name)
          .cell(to_string(s->kind))
          .cell(s->time_p50 / 86400.0, 1)
          .cell(s->time_p90 / 86400.0, 1)
          .cell(s->cost.mean() / 1e3, 1)
          .cell(s->fabrications.mean(), 2)
          .cell(s->simulations.mean(), 2)
          .cell(s->kind == cmp.faster ? "FASTER" : "");
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check (paper's thesis): in the CMOS habitat Fig.1 wins —\n"
               "every avoided re-spin saves ~70 days and ~110 kEUR. In the dry-film\n"
               "fluidic habitat Fig.2 wins: a 2.5-day prototype loop beats a 10-day,\n"
               "low-coverage simulation campaign.\n";
}

void print_crossover_sweep() {
  print_banner(std::cout, "C5: crossover vs fabrication turnaround (fluidic fidelity)");
  flow::FlowParameters base = flow::fluidic_flow_parameters();
  std::vector<double> turnarounds;
  for (double d = 0.5; d <= 256.0; d *= 2.0) turnarounds.push_back(d * 86400.0);
  const auto sweep = flow::crossover_sweep(base, turnarounds, 2000, 17);
  Table t({"fab turnaround [d]", "simulate-first [d]", "fabricate-first [d]", "faster"});
  for (const flow::CrossoverPoint& p : sweep) {
    t.row()
        .cell(p.fab_turnaround / 86400.0, 1)
        .cell(p.time_simulate_first / 86400.0, 1)
        .cell(p.time_fabricate_first / 86400.0, 1)
        .cell(to_string(p.faster));
  }
  t.print(std::cout);
  std::cout << "\nShape check: fabricate-first dominates while prototypes take days;\n"
               "the preference flips as turnaround reaches weeks-to-months (the CMOS\n"
               "regime), reproducing the paper's Fig.1-vs-Fig.2 split.\n";
}

void print_fidelity_sweep() {
  print_banner(std::cout, "C5: role of model fidelity (fluidic habitat)");
  Table t({"sim coverage", "simulate-first [d]", "fabricate-first [d]", "faster"});
  for (double coverage : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    flow::FlowParameters p = flow::fluidic_flow_parameters();
    p.fidelity.coverage = coverage;
    const flow::FlowComparison cmp = flow::compare_flows(p, 2000, 23);
    t.row()
        .cell(coverage, 2)
        .cell(cmp.simulate_first.time.mean() / 86400.0, 1)
        .cell(cmp.fabricate_first.time.mean() / 86400.0, 1)
        .cell(to_string(cmp.faster));
  }
  t.print(std::cout);
  std::cout << "\nShape check: with fluidic fab this fast, even near-perfect models\n"
               "(coverage 0.95) cannot make simulate-first faster: the paper's §3\n"
               "point that simulation earns its keep as *insight*, not as gatekeeper.\n";
}

void print_design_centering() {
  print_banner(std::cout,
               "C5: design centering — the dashed arcs of Figs. 1 & 2");
  // Optimize a normalized design parameter with four strategies.
  const flow::CenteringProblem prob{0.0, 1.0, 0.37, 10.0};
  const flow::EvaluatorModel sim = flow::fluidic_simulation_evaluator();
  const flow::EvaluatorModel exp_ev = flow::fluidic_experiment_evaluator();
  Table t({"strategy", "chip builds", "residual design error", "wall time [d]",
           "cost [EUR]"});
  Rng rng(31);
  auto run_many = [&](auto&& campaign, const char* name, int builds) {
    RunningStats err, time, cost;
    for (int trial = 0; trial < 300; ++trial) {
      Rng r = rng.split();
      const flow::CenteringOutcome out = campaign(r);
      err.add(out.design_error);
      time.add(out.time);
      cost.add(out.cost);
    }
    t.row()
        .cell(name)
        .cell(builds)
        .cell(err.mean(), 4)
        .cell(time.mean() / 86400.0, 1)
        .cell(cost.mean(), 0);
  };
  run_many([&](Rng& r) { return flow::center_design(prob, sim, 26, r); },
           "simulation only (biased)", 0);
  run_many([&](Rng& r) { return flow::center_design(prob, exp_ev, 6, r); },
           "experiment only, 6 builds", 6);
  run_many([&](Rng& r) { return flow::center_design(prob, exp_ev, 8, r); },
           "experiment only, 8 builds", 8);
  run_many(
      [&](Rng& r) { return flow::center_design_hybrid(prob, sim, exp_ev, 20, 6, r); },
      "hybrid: 20 sims + 6 builds", 6);
  t.print(std::cout);
  std::cout << "\nShape check: simulation alone is fast and cheap but floored at its\n"
               "own bias (0.12). At the same SIX chip builds, front-loading cheap\n"
               "biased simulations cuts the residual error ~30% — and still beats\n"
               "eight builds alone on error, time, and builds. That is Fig. 2's\n"
               "dashed arc: simulation as optimizer-of-the-loop, not gatekeeper.\n";
}

void bm_flow_trial(benchmark::State& state) {
  const flow::FlowParameters params = state.range(0) == 0
                                          ? flow::cmos_flow_parameters()
                                          : flow::fluidic_flow_parameters();
  Rng rng(5);
  for (auto _ : state) {
    flow::FlowOutcome out =
        flow::run_flow(flow::FlowKind::kFabricateFirst, params, rng);
    benchmark::DoNotOptimize(out.time);
  }
  state.SetLabel(params.name);
}

void bm_full_comparison(benchmark::State& state) {
  for (auto _ : state) {
    flow::FlowComparison cmp =
        flow::compare_flows(flow::fluidic_flow_parameters(),
                            static_cast<std::size_t>(state.range(0)), 3);
    benchmark::DoNotOptimize(cmp.time_ratio);
  }
}

BENCHMARK(bm_flow_trial)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_full_comparison)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_habitat_comparison();
  print_crossover_sweep();
  print_fidelity_sweep();
  print_design_centering();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
