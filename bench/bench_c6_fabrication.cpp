// Experiment C6 — "we developed some special techniques [5] to achieve fast
// turnaround time (two-three days from design to device) and very low cost
// both for the masks (few euros) and overall set-up for fabrication (tens of
// thousands euros)." (paper §3)
//
// Reproduces the dry-film-resist economics against the alternative fluidic
// processes, per-device cost vs volume, and the loop-rate consequence that
// feeds C5.

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "fluidic/chamber.hpp"
#include "fluidic/fabrication.hpp"
#include "fluidic/flow.hpp"
#include "fluidic/mask.hpp"
#include "fluidic/network.hpp"
#include "fluidic/packaging.hpp"
#include "physics/medium.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

fluidic::FluidicMask paper_mask() {
  fluidic::FluidicMask mask("paper_chamber");
  mask.add_rect("chamber", fluidic::FeatureKind::kChamber,
                {{0.8_mm, 0.8_mm}, {7.2_mm, 7.2_mm}}, 0);
  mask.add_channel("inlet_channel", {0.4_mm, 4.0_mm}, {0.8_mm, 4.0_mm}, 400.0_um, 0);
  mask.add_channel("outlet_channel", {7.2_mm, 4.0_mm}, {7.6_mm, 4.0_mm}, 400.0_um, 0);
  mask.add_port("inlet", {0.5_mm, 4.0_mm}, 600.0_um, 1);
  mask.add_port("outlet", {7.5_mm, 4.0_mm}, 600.0_um, 1);
  return mask;
}

void print_process_comparison() {
  print_banner(std::cout, "C6: fluidic process comparison (paper S3 anchors)");
  Table t({"process", "min feat [um]", "mask [EUR]", "setup [kEUR]", "turnaround [d]",
           "on CMOS die", "loops/month", "feasible for paper mask"});
  const fluidic::FluidicMask mask = paper_mask();
  for (const fluidic::ProcessSpec& p : fluidic::process_catalog()) {
    const fluidic::FabricationReport r =
        fluidic::plan_fabrication(mask, p, 20, 100.0_um, /*on_cmos_die=*/true);
    t.row()
        .cell(p.name)
        .cell(p.min_feature * 1e6, 0)
        .cell(p.mask_cost, 0)
        .cell(p.setup_cost / 1e3, 0)
        .cell(p.turnaround / 86400.0, 1)
        .cell(p.cmos_compatible ? "yes" : "no")
        .cell(fluidic::iterations_per_month(p), 1)
        .cell(r.feasible ? "yes" : (r.issues.empty() ? "no" : r.issues.front()));
  }
  t.print(std::cout);
  std::cout << "\nPaper anchors: dry film = 2-3 days, masks ~5 EUR, setup ~30 kEUR —\n"
               "the only catalog process that is simultaneously die-compatible,\n"
               "day-scale, and transparency-mask cheap. That uniqueness is what\n"
               "makes the Fig.2 fabricate-first loop viable at all.\n";
}

void print_volume_economics() {
  print_banner(std::cout, "C6: per-device cost vs production volume (dry film)");
  Table t({"volume [devices]", "NRE [EUR]", "unit [EUR]", "amortized/device [EUR]"});
  const fluidic::FluidicMask mask = paper_mask();
  for (int volume : {1, 10, 100, 1000, 10000}) {
    const fluidic::FabricationReport r = fluidic::plan_fabrication(
        mask, fluidic::dry_film_resist(), volume, 100.0_um, true);
    t.row()
        .cell(volume)
        .cell(r.nre_cost, 0)
        .cell(r.unit_cost, 0)
        .cell(r.amortized_unit_cost, 1);
  }
  t.print(std::cout);
}

void print_package_report() {
  print_banner(std::cout, "C6/Fig.3: hybrid package assembly (ITO lid on CMOS die)");
  fluidic::PackageSpec spec;
  spec.die_width = 8.0_mm;
  spec.die_height = 8.0_mm;
  spec.active_width = 6.4_mm;
  spec.active_height = 6.4_mm;
  spec.resist_thickness = 100.0_um;
  const fluidic::AssembledDevice dev = fluidic::assemble(spec, fluidic::AssemblyYield{});
  Table t({"property", "value"});
  t.row().cell("feasible").cell(dev.feasible ? "yes" : "no");
  t.row().cell("chamber volume").cell_si(dev.chamber.volume() * 1e3, "l");
  t.row().cell("chamber height").cell_si(dev.chamber.height, "m");
  t.row().cell("assembly yield").cell(dev.yield, 3);
  t.row().cell("ITO lid IR drop").cell_si(dev.lid_voltage_drop, "V");
  t.print(std::cout);
}

void print_drc_summary() {
  print_banner(std::cout, "C6: DRC at the 100 um-class rules of ref [5]");
  fluidic::DesignRules rules;
  rules.die = {{0.0, 0.0}, {8.0_mm, 8.0_mm}};
  fluidic::FluidicMask clean = paper_mask();
  fluidic::FluidicMask dirty = paper_mask();
  dirty.add_channel("narrow", {2.0_mm, 7.6_mm}, {5.0_mm, 7.6_mm}, 60.0_um, 0);
  dirty.add_rect("stray", fluidic::FeatureKind::kChamber,
                 {{7.25_mm, 1.0_mm}, {7.6_mm, 2.0_mm}}, 0);
  Table t({"mask", "violations"});
  t.row().cell("paper_chamber (clean)").cell(
      std::to_string(fluidic::run_drc(clean, rules).size()));
  t.row().cell("paper_chamber + narrow channel + stray island").cell(
      std::to_string(fluidic::run_drc(dirty, rules).size()));
  t.print(std::cout);
}

void print_hydraulic_design() {
  print_banner(std::cout,
               "C6: feed-network design (hydraulic nodal analysis, Fig.2-style "
               "quick model)");
  // Inlet channel -> chamber (as a wide slot) -> outlet channel, driven by a
  // pressure head; how much head does a gentle chamber exchange need?
  const physics::Medium medium = physics::dep_buffer();
  const fluidic::Microchamber chamber{6.4_mm, 6.4_mm, 100.0_um};
  Table t({"pressure head [Pa]", "flow [ul/min]", "chamber mean v [um/s]",
           "exchange time [min]", "wall shear [mPa]"});
  for (double head : {10.0, 50.0, 200.0, 1000.0}) {
    fluidic::HydraulicNetwork net(medium);
    const int inlet = net.add_node("inlet");
    const int ch_in = net.add_node("chamber_in");
    const int ch_out = net.add_node("chamber_out");
    const int outlet = net.add_node("outlet");
    net.add_channel(inlet, ch_in, 3.0_mm, 400.0_um, 100.0_um, "feed");
    const int ch = net.add_channel(ch_in, ch_out, chamber.length, chamber.width,
                                   chamber.height, "chamber");
    net.add_channel(ch_out, outlet, 3.0_mm, 400.0_um, 100.0_um, "drain");
    net.set_pressure(inlet, head);
    net.set_pressure(outlet, 0.0);
    const auto sol = net.solve();
    const double q = sol.channel_flow[static_cast<std::size_t>(ch)];
    const double v = net.mean_velocity(sol, ch);
    const fluidic::SlotFlow flow(chamber, medium, v);
    t.row()
        .cell(head, 0)
        .cell(q * 1e9 * 60.0, 2)
        .cell(v * 1e6, 1)
        .cell(chamber.exchange_time(q) / 60.0, 1)
        .cell(flow.wall_shear_stress() * 1e3, 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: tens of pascals (a millimetre of water head) exchange\n"
               "the 4 ul chamber in minutes at cell-safe shear — why the paper's\n"
               "passive drop/port loading works without pumps.\n";
}

void bm_drc(benchmark::State& state) {
  fluidic::DesignRules rules;
  rules.die = {{0.0, 0.0}, {8.0_mm, 8.0_mm}};
  fluidic::FluidicMask mask = paper_mask();
  // Grow the mask to stress pairwise spacing checks.
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const double x = 0.5_mm + (i % 10) * 0.7_mm;
    const double y = 7.4_mm - (i / 10) * 0.4_mm;
    mask.add_rect("blk" + std::to_string(i), fluidic::FeatureKind::kSpacerWall,
                  {{x, y}, {x + 0.4_mm, y + 0.2_mm}}, 0);
  }
  for (auto _ : state) {
    auto v = fluidic::run_drc(mask, rules);
    benchmark::DoNotOptimize(v.data());
  }
}

void bm_fabrication_plan(benchmark::State& state) {
  const fluidic::FluidicMask mask = paper_mask();
  for (auto _ : state) {
    auto r = fluidic::plan_fabrication(mask, fluidic::dry_film_resist(), 100, 100.0_um,
                                       true);
    benchmark::DoNotOptimize(r.amortized_unit_cost);
  }
}

BENCHMARK(bm_drc)->Arg(20)->Arg(80)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_fabrication_plan)->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  print_process_comparison();
  print_volume_economics();
  print_package_report();
  print_drc_summary();
  print_hydraulic_design();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
