// Experiment SN-1 — readout-chain engineering: frame rate vs array size and
// ADC provisioning, capacitive signal scale vs pixel geometry, and the CDS
// ablation. Complements C4 (which fixes the chain and sweeps averaging).

#include <benchmark/benchmark.h>

#include <iostream>

#include "chip/device.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sensor/capacitive.hpp"
#include "sensor/detect.hpp"
#include "sensor/frame.hpp"
#include "sensor/scan.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

void print_frame_rate_table() {
  print_banner(std::cout, "SN-1: frame rate vs array size and ADC provisioning");
  Table t({"array", "ADCs", "ADC rate [Msps]", "frame time [ms]", "frame rate [fps]"});
  for (int side : {64, 320, 1024}) {
    const chip::ElectrodeArray array(side, side, 20.0_um);
    for (int adcs : {1, 8, 32}) {
      sensor::ScanTiming scan;
      scan.adc_channels = adcs;
      t.row()
          .cell(std::to_string(side) + "x" + std::to_string(side))
          .cell(adcs)
          .cell(scan.adc_rate / 1e6, 1)
          .cell(scan.frame_time(array) * 1e3, 2)
          .cell(scan.frame_rate(array), 1);
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: the paper-scale array reads at video rate with a\n"
               "modest 8-ADC bank; readout parallelism, not pixel physics, sets\n"
               "the frame rate.\n";
}

void print_signal_vs_geometry() {
  print_banner(std::cout, "SN-1: capacitive signal vs pixel geometry (5 um cell)");
  Table t({"pitch [um]", "C_base [fF]", "dC [aF]", "dC/C [ppm]", "1-frame SNR"});
  for (double pitch_um : {10.0, 20.0, 40.0, 80.0}) {
    sensor::CapacitivePixel px;
    const double metal = 0.8 * pitch_um * 1e-6;
    px.electrode_area = metal * metal;
    px.chamber_height = 100.0_um;
    px.sense_voltage = 3.3;
    const double c0 = px.baseline_capacitance();
    const double dc = px.delta_c(5.0_um, 5.5_um, 0.0);
    t.row()
        .cell(pitch_um, 0)
        .cell(c0 * 1e15, 3)
        .cell(-dc * 1e18, 1)
        .cell(-dc / c0 * 1e6, 1)
        .cell(px.single_frame_snr(5.0_um, 5.5_um, 298.15), 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: single-frame SNR peaks at the cell-sized (20 um)\n"
               "pixel — oversized pixels dilute the signal, undersized ones lose\n"
               "collection area — matching the paper's point that the pitch should\n"
               "track cell size, not the technology minimum.\n";
}

void print_cds_ablation() {
  print_banner(std::cout, "SN-1 ablation: raw vs CDS readout (fixed-pattern offsets)");
  const chip::ElectrodeArray array(64, 64, 20.0_um);
  sensor::CapacitivePixel px;
  px.electrode_area = 16.0_um * 16.0_um;
  px.chamber_height = 100.0_um;
  px.sense_voltage = 3.3;
  sensor::FrameSynthesizer synth(array, px, 298.15, 555);
  std::vector<sensor::FrameTarget> cell{{{640.0_um, 640.0_um, 5.5_um}, 5.0_um}};
  Rng rng(6);
  RunningStats raw_stats, cds_stats;
  for (int rep = 0; rep < 4; ++rep) {
    const Grid2 raw = synth.raw_frame(cell, rng);
    const Grid2 cds = synth.cds_frame(cell, rng);
    for (double v : raw.data()) raw_stats.add(v);
    for (double v : cds.data()) cds_stats.add(v);
  }
  const double signal = -px.delta_c(5.0_um, 5.5_um, 0.0);
  Table t({"readout", "pixel sigma [aF]", "signal/sigma"});
  t.row().cell("raw (offsets in)").cell(raw_stats.stddev() * 1e18, 1).cell(
      signal / raw_stats.stddev(), 2);
  t.row().cell("CDS").cell(cds_stats.stddev() * 1e18, 1).cell(
      signal / cds_stats.stddev(), 2);
  t.print(std::cout);
  std::cout << "\nShape check: without CDS the 3 fF fixed-pattern dispersion buries\n"
               "the ~" << static_cast<int>(signal * 1e18)
            << " aF cell signal; CDS recovers it — the design choice of the\n"
               "ISSCC'04 sensor (paper ref [4]).\n";
}

void print_optical_comparison() {
  print_banner(std::cout,
               "SN-1: capacitive vs optical pixel (the paper's two options)");
  Table t({"particle radius [um]", "capacitive 1-frame SNR", "optical 1-frame SNR",
           "capacitive N for 5-sigma", "optical N for 5-sigma"});
  sensor::CapacitivePixel cap;
  cap.electrode_area = 16.0_um * 16.0_um;
  cap.chamber_height = 100.0_um;
  cap.sense_voltage = 3.3;
  sensor::OpticalPixel opt;
  opt.photodiode_area = 10.0_um * 10.0_um;
  for (double r_um : {1.0, 2.0, 5.0, 10.0}) {
    const double r = r_um * 1e-6;
    const double s_cap = cap.single_frame_snr(r, r * 1.1, 298.15);
    const double s_opt = opt.single_frame_snr(r);
    auto frames_for = [](double snr1) {
      if (snr1 <= 0.0) return std::string("-");
      const double n = (5.0 / snr1) * (5.0 / snr1);
      return std::to_string(static_cast<long>(n < 1.0 ? 1.0 : std::ceil(n)));
    };
    t.row()
        .cell(r_um, 1)
        .cell(s_cap, 2)
        .cell(s_opt, 2)
        .cell(frames_for(s_cap))
        .cell(frames_for(s_opt));
  }
  t.print(std::cout);
  std::cout << "\nShape check: both per-pixel sensors the paper mentions resolve a\n"
               "cell-sized particle in one frame; the optical pixel wins on raw SNR\n"
               "(photon flux is cheap) while the capacitive pixel needs no\n"
               "illumination optics — the trade the authors actually faced between\n"
               "refs [3] and [4].\n";
}

void bm_scan_model(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  sensor::ScanTiming scan;
  for (auto _ : state) benchmark::DoNotOptimize(scan.frame_time(array));
}

void bm_matched_filter(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  sensor::CapacitivePixel px;
  px.electrode_area = 16.0_um * 16.0_um;
  px.chamber_height = 100.0_um;
  sensor::FrameSynthesizer synth(array, px, 298.15, 555);
  Rng rng(8);
  const Grid2 frame = synth.cds_frame({{{320.0_um, 320.0_um, 5.5_um}, 5.0_um}}, rng);
  for (auto _ : state) {
    auto dets = sensor::detect_matched(frame, array, px, 5.0_um, 5.5_um,
                                       synth.cds_noise_sigma());
    benchmark::DoNotOptimize(dets.data());
  }
}

BENCHMARK(bm_scan_model)->Arg(320)->Unit(benchmark::kNanosecond);
BENCHMARK(bm_matched_filter)->Arg(64)->Arg(320)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_frame_rate_table();
  print_signal_vs_geometry();
  print_cds_ablation();
  print_optical_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
