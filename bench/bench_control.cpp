// Closed-loop control engine throughput: supervisory ticks/s of the full
// sense → track → replan → actuate loop vs array size and live-cage count,
// plus the open-loop baseline for the control overhead, plus the
// multi-chamber orchestrator's ticks/s vs chamber count. Per-tick cost is
// frame synthesis + detection (O(pixels)) on top of the per-body physics
// (O(cages × substeps)); the counters record achieved ticks/s so the BENCH
// JSON carries the control loop's throughput trajectory.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cell/library.hpp"
#include "chip/device.hpp"
#include "control/orchestrator.hpp"
#include "core/closed_loop.hpp"
#include "fluidic/chamber_network.hpp"
#include "obs/obs.hpp"
#include "physics/medium.hpp"

using namespace biochip;

namespace {

sensor::CapacitivePixel pixel_for(const chip::BiochipDevice& dev) {
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

struct World {
  chip::BiochipDevice dev;
  physics::Medium medium = physics::dep_buffer();
  chip::CageController cages;
  core::ManipulationEngine engine;
  sensor::FrameSynthesizer imager;
  chip::DefectMap defects;
  std::vector<physics::ParticleBody> bodies;
  std::vector<std::pair<int, int>> cage_bodies;
  std::vector<control::CageGoal> goals;

  World(const chip::DeviceConfig& cfg, const field::HarmonicCage& cage)
      : dev(cfg), cages(dev.array(), 2),
        engine(dev, medium, cage, 1.5 * cfg.pitch),
        imager(dev.array(), pixel_for(dev), medium.temperature, 7),
        defects(dev.array()) {}

  void add_cell(GridCoord site, GridCoord goal) {
    const cell::ParticleSpec spec = cell::viable_lymphocyte();
    const int id = cages.create(site);
    bodies.push_back({engine.field_model().trap_center(site), spec.radius, spec.density,
                      spec.dep_prefactor(medium, dev.config().drive_frequency), id});
    cage_bodies.emplace_back(id, static_cast<int>(bodies.size()) - 1);
    goals.push_back({id, goal});
  }
};

const field::HarmonicCage& unit_cage() {
  static const field::HarmonicCage cage =
      chip::BiochipDevice(chip::paper_config_on_node(chip::paper_node()))
          .calibrate_cage(5, 6);
  return cage;
}

std::unique_ptr<World> make_world(int side, int n_cages) {
  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = side;
  cfg.rows = side;
  auto world = std::make_unique<World>(cfg, unit_cage());
  Rng defect_rng(515);
  world->defects = chip::sample_defects(world->dev.array(), 0.01, defect_rng);
  const int start_col = 3;
  const int goal_col = side - 4;
  for (int n = 0; n < n_cages; ++n) {
    const int row = 2 + 3 * n;
    for (const int col : {start_col, goal_col})
      for (int dr = -1; dr <= 1; ++dr)
        for (int dc = -1; dc <= 1; ++dc)
          world->defects.set_state({col + dc, row + dr}, chip::PixelState::kOk);
    world->add_cell({start_col, row}, {goal_col, row});
  }
  return world;
}

// range(0) = array side, range(1) = live cages, range(2) = closed loop (1)
// vs open-loop baseline (0).
void bm_control_episode(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const int n_cages = static_cast<int>(state.range(1));
  unit_cage();  // calibrate outside the timed region

  control::ControlConfig config;
  config.closed_loop = state.range(2) == 1;
  config.escape_rate = 0.003;

  double total_ticks = 0.0;
  double delivered = 0.0, goals_n = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    auto world = make_world(side, n_cages);
    core::ClosedLoopTransporter transporter(world->cages, world->engine, world->imager,
                                            world->defects, 0.4, config);
    Rng rng(90210);
    state.ResumeTiming();
    const control::EpisodeReport report =
        transporter.execute(world->goals, world->bodies, world->cage_bodies, rng);
    state.PauseTiming();
    total_ticks += report.ticks;
    delivered += static_cast<double>(report.delivered_ids.size());
    goals_n += static_cast<double>(world->goals.size());
    state.ResumeTiming();
  }
  state.counters["ticks_per_s"] =
      benchmark::Counter(total_ticks, benchmark::Counter::kIsRate);
  state.counters["delivered_frac"] = goals_n > 0.0 ? delivered / goals_n : 0.0;
}

BENCHMARK(bm_control_episode)
    ->Args({16, 4, 1})
    ->Args({32, 4, 1})
    ->Args({32, 10, 1})
    ->Args({32, 10, 0})
    ->Args({48, 10, 1})
    ->Args({48, 15, 1})
    ->Unit(benchmark::kMillisecond);

// Multi-chamber orchestration: a chain of N 24x24 chambers, each with two
// local deliveries, plus one cross-chamber transfer per port. range(0) =
// chamber count. `ticks_per_s` is the global supervisory tick rate (one
// global tick = one tick of EVERY chamber, barrier-synchronized);
// `chamber_ticks_per_s` multiplies by the chamber count — the aggregate
// supervisory work rate, which is what should scale with worker count on a
// multi-core host (this container is 1-core, so expect it roughly flat).
/// Full in-memory telemetry (counting folds + phase spans, no file IO) —
/// the obs-on price the `_obs` bench variants measure against the baseline.
obs::ObsConfig bench_obs_config() {
  obs::ObsConfig ocfg;
  ocfg.enabled = true;
  ocfg.timing = true;
  return ocfg;
}

void run_orchestrator_bench(benchmark::State& state, int n_chambers,
                            const control::OrchestratorConfig& config,
                            bool with_obs = false) {
  const int side = 24;
  unit_cage();  // calibrate outside the timed region

  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = side;
  cfg.rows = side;

  fluidic::ChamberNetwork net;
  fluidic::Microchamber geo;
  geo.length = side * cfg.pitch;
  geo.width = side * cfg.pitch;
  geo.height = cfg.chamber_height;
  for (int c = 0; c < n_chambers; ++c) net.add_chamber(geo, side, side);
  for (int c = 0; c + 1 < n_chambers; ++c)
    net.add_port(c, {side - 2, side / 2}, c + 1, {1, side / 2}, 500e-6, 60e-6);

  double total_ticks = 0.0;
  double delivered = 0.0, goals_n = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<World>> worlds;
    std::vector<control::ChamberSetup> chambers;
    std::vector<control::TransferGoal> transfers;
    for (int c = 0; c < n_chambers; ++c) {
      worlds.push_back(std::make_unique<World>(cfg, unit_cage()));
      World& w = *worlds.back();
      Rng defect_rng(515 + static_cast<std::uint64_t>(c));
      w.defects = chip::sample_defects(w.dev.array(), 0.01, defect_rng);
      const GridCoord keep[8] = {{side - 2, side / 2}, {1, side / 2},
                                 {3, 4},               {side - 4, 4},
                                 {3, side - 5},        {side - 4, 7},
                                 {4, side / 2},        {side - 5, side / 2 - 3}};
      for (const GridCoord s : keep)
        for (int dr = -1; dr <= 1; ++dr)
          for (int dc = -1; dc <= 1; ++dc)
            w.defects.set_state({s.col + dc, s.row + dr}, chip::PixelState::kOk);
      w.add_cell({3, 4}, {side - 4, 4});
      w.add_cell({3, side - 5}, {side - 4, 4 + 3});  // second local delivery
      goals_n += 2.0;
    }
    for (int c = 0; c + 1 < n_chambers; ++c) {
      World& w = *worlds[static_cast<std::size_t>(c)];
      const int id = w.cages.create({4, side / 2});
      const cell::ParticleSpec spec = cell::viable_lymphocyte();
      w.bodies.push_back({w.engine.field_model().trap_center({4, side / 2}),
                          spec.radius, spec.density,
                          spec.dep_prefactor(w.medium, cfg.drive_frequency), id});
      w.cage_bodies.emplace_back(id, static_cast<int>(w.bodies.size()) - 1);
      transfers.push_back({c, id, c + 1, {side - 5, side / 2 - 3}});
      goals_n += 1.0;
    }
    for (auto& w : worlds)
      chambers.push_back({&w->cages, &w->engine, &w->imager, &w->defects, &w->bodies,
                          w->cage_bodies, w->goals});
    control::Orchestrator orch(net, config);
    Rng rng(90210);
    obs::Observer observer(with_obs ? bench_obs_config() : obs::ObsConfig{});
    state.ResumeTiming();
    const control::OrchestratorReport report =
        core::ClosedLoopTransporter::execute_orchestrated(
            orch, chambers, transfers, rng, 0,
            with_obs ? &observer : nullptr);
    state.PauseTiming();
    total_ticks += report.ticks;
    delivered += static_cast<double>(report.delivered_transfers.size());
    for (const control::EpisodeReport& cr : report.chambers)
      delivered += static_cast<double>(cr.delivered_ids.size());
    state.ResumeTiming();
  }
  state.counters["ticks_per_s"] =
      benchmark::Counter(total_ticks, benchmark::Counter::kIsRate);
  state.counters["chamber_ticks_per_s"] =
      benchmark::Counter(total_ticks * n_chambers, benchmark::Counter::kIsRate);
  state.counters["delivered_frac"] = goals_n > 0.0 ? delivered / goals_n : 0.0;
}

void bm_orchestrator_chambers(benchmark::State& state) {
  control::OrchestratorConfig config;
  config.control.escape_rate = 0.003;
  run_orchestrator_bench(state, static_cast<int>(state.range(0)), config);
}

BENCHMARK(bm_orchestrator_chambers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Telemetry-on twin of bm_orchestrator_chambers: full counting-plane folds
// plus phase-span tracing, in memory (no exporter IO). Compare against the
// same-arg baseline for the obs overhead (docs/perf.md tracks the delta).
void bm_orchestrator_chambers_obs(benchmark::State& state) {
  control::OrchestratorConfig config;
  config.control.escape_rate = 0.003;
  run_orchestrator_bench(state, static_cast<int>(state.range(0)), config,
                         /*with_obs=*/true);
}

BENCHMARK(bm_orchestrator_chambers_obs)->Arg(3)->Unit(benchmark::kMillisecond);

// Tracked-field twin of bm_orchestrator_chambers: every chamber keeps a
// whole-chamber potential grid current inside the actuation loop (2
// nodes/pitch). range(1) is the incremental re-anchor period: 1 = full
// multigrid solve every tick (what made in-loop field tracking
// unaffordable), 8 = windowed dirty-region corrections with the periodic
// full re-anchor. The /1 vs /8 chamber_ticks_per_s ratio is the incremental
// win inside the closed loop; the delta against the untracked same-arg
// baseline is the residual cost of tracking at all.
void bm_orchestrator_chambers_tracked(benchmark::State& state) {
  control::OrchestratorConfig config;
  config.control.escape_rate = 0.003;
  config.control.field_tracking_nodes_per_pitch = 2;
  config.control.field_tracking.incremental.reanchor_period =
      static_cast<std::size_t>(state.range(1));
  run_orchestrator_bench(state, static_cast<int>(state.range(0)), config);
}

BENCHMARK(bm_orchestrator_chambers_tracked)
    ->Args({3, 1})
    ->Args({3, 8})
    ->Unit(benchmark::kMillisecond);

// Fault-lifecycle overhead: the same chamber chain under a hostile sampled
// fault schedule with rescue and the per-chamber HealthMonitor enabled —
// the price of the robustness machinery in ticks/s and episode length
// (faulted episodes run ~2-3x longer), with `delivered_frac` recording what
// the degrading chip still lands (the machinery's job is to hold it at
// 1.0). range(0) = chamber count.
void bm_orchestrator_faulted(benchmark::State& state) {
  control::OrchestratorConfig config;
  config.control.escape_rate = 0.003;
  config.control.rescue = true;
  config.control.health.enabled = true;
  config.faults.rates.electrode_dead = 1e-2;
  config.faults.rates.electrode_silent_dead = 2e-2;
  config.faults.rates.sensor_row_dropout = 5e-3;
  config.faults.rates.sensor_pixel_burst = 5e-3;
  config.faults.rates.port_intermittent = 5e-3;
  config.faults.max_electrode_faults_per_chamber = 10;
  run_orchestrator_bench(state, static_cast<int>(state.range(0)), config);
}

BENCHMARK(bm_orchestrator_faulted)
    ->Arg(1)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Open-system streaming service curve: a 2-chamber chip with one inlet per
// chamber under continuous Poisson arrivals and admission control
// (control/streaming.hpp). range(0) = offered load per inlet-tick x1000,
// spanning under-load to ~2x overload. The counters record the service
// curve the BENCH JSON tracks per PR: delivered `cells_per_hour` plus
// p50/p99 time-in-chip [ticks] vs offered load, the typed `shed_frac`, and
// the supervisory `ticks_per_s` loop cost. Runs are deterministic (fixed
// seed), so the quantiles are identical across iterations.
void run_streaming_bench(benchmark::State& state, bool with_obs,
                         int tracked_period = -1) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  const int side = 16;
  constexpr std::size_t n_chambers = 2;
  unit_cage();  // calibrate outside the timed region

  chip::DeviceConfig cfg = chip::paper_config_on_node(chip::paper_node());
  cfg.cols = side;
  cfg.rows = side;

  fluidic::ChamberNetwork net;
  fluidic::Microchamber geo;
  geo.length = side * cfg.pitch;
  geo.width = side * cfg.pitch;
  geo.height = cfg.chamber_height;
  for (std::size_t c = 0; c < n_chambers; ++c) net.add_chamber(geo, side, side);
  for (int c = 0; c < static_cast<int>(n_chambers); ++c) net.add_inlet(c, {1, 8});

  double total_ticks = 0.0;
  control::StreamingReport last;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<World>> worlds;
    std::vector<control::ChamberSetup> chambers;
    for (std::size_t c = 0; c < n_chambers; ++c)
      worlds.push_back(std::make_unique<World>(cfg, unit_cage()));
    const auto proto = [&](const cell::ParticleSpec& spec) {
      return physics::ParticleBody{
          {0.0, 0.0, 0.0}, spec.radius, spec.density,
          spec.dep_prefactor(worlds[0]->medium, cfg.drive_frequency), 0};
    };
    control::StreamingConfig scfg;
    scfg.ticks = 800;
    scfg.arrival_rates.assign(n_chambers, rate);
    scfg.type_weights = {3.0, 1.0};
    scfg.body_prototypes = {proto(cell::viable_lymphocyte()),
                            proto(cell::polystyrene_bead(5e-6))};
    scfg.admission.queue_capacity = 4;
    scfg.admission.chamber_quota = 3;
    scfg.admission.degraded_quota = 1;
    scfg.service_deadline = 120;
    scfg.goal_sites.assign(n_chambers, {{12, 4}, {12, 8}, {12, 12}});
    scfg.control.escape_rate = 1e-3;
    scfg.control.health.enabled = true;
    if (tracked_period >= 0) {
      scfg.control.field_tracking_nodes_per_pitch = 2;
      scfg.control.field_tracking.incremental.reanchor_period =
          static_cast<std::size_t>(tracked_period);
    }
    scfg.elide_idle_chambers = true;
    control::StreamingService service(net, scfg);
    for (auto& w : worlds)
      chambers.push_back({&w->cages, &w->engine, &w->imager, &w->defects,
                          &w->bodies, w->cage_bodies, w->goals});
    Rng rng(90210);
    obs::Observer observer(with_obs ? bench_obs_config() : obs::ObsConfig{});
    state.ResumeTiming();
    last = core::ClosedLoopTransporter::execute_streaming(
        service, chambers, rng, 0, with_obs ? &observer : nullptr);
    state.PauseTiming();
    total_ticks += last.ticks;
    state.ResumeTiming();
  }
  state.counters["ticks_per_s"] =
      benchmark::Counter(total_ticks, benchmark::Counter::kIsRate);
  state.counters["cells_per_hour"] = last.cells_per_hour(0.4);
  state.counters["p50_ticks"] = static_cast<double>(last.latency_quantile(0.5));
  state.counters["p99_ticks"] = static_cast<double>(last.latency_quantile(0.99));
  state.counters["shed_frac"] =
      last.admission.offered == 0
          ? 0.0
          : static_cast<double>(last.admission.shed) /
                static_cast<double>(last.admission.offered);
  state.counters["delivered_frac"] =
      last.admission.admitted == 0
          ? 0.0
          : static_cast<double>(last.delivered) /
                static_cast<double>(last.admission.admitted);
}

void bm_streaming(benchmark::State& state) {
  run_streaming_bench(state, /*with_obs=*/false);
}

BENCHMARK(bm_streaming)
    ->Arg(36)   // ~0.5x the sustained service rate
    ->Arg(71)   // ~1.0x — the knee of the latency curve
    ->Arg(142)  // ~2.0x — scripted overload: typed shedding holds the line
    ->Unit(benchmark::kMillisecond);

// Telemetry-on twin of bm_streaming at the latency-curve knee: counting
// folds every tick plus ~10 phase spans per tick into the trace ring, no
// exporter IO. The CI bench smoke asserts the *disabled* path (bm_streaming
// itself, observer never attached) is unchanged; this variant prices the
// enabled path.
void bm_streaming_obs(benchmark::State& state) {
  run_streaming_bench(state, /*with_obs=*/true);
}

BENCHMARK(bm_streaming_obs)
    ->Arg(71)  // ~1.0x — the knee of the latency curve
    ->Unit(benchmark::kMillisecond);

// Tracked-field twin of bm_streaming at the knee: the service loop carries a
// live whole-chamber potential per chamber. range(1) is the re-anchor
// period, as in bm_orchestrator_chambers_tracked — the /1 row prices
// full-solve-per-tick, the /8 row the incremental dirty-region policy.
void bm_streaming_tracked(benchmark::State& state) {
  run_streaming_bench(state, /*with_obs=*/false,
                      static_cast<int>(state.range(1)));
}

BENCHMARK(bm_streaming_tracked)
    ->Args({71, 1})
    ->Args({71, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
