// Experiment C4 — "This is an opportunity ... to trade time of execution for
// quality of the results, e.g. averaging sensors output for thermal noise
// reduction." (paper §2)
//
// Shows the √N SNR law on the capacitive pixel, the resulting detection
// quality (recall/precision against ground truth) vs averaging depth, and
// that the required averaging fits the mass-transfer time budget of C3.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "chip/device.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sensor/capacitive.hpp"
#include "sensor/detect.hpp"
#include "sensor/frame.hpp"
#include "sensor/roc.hpp"
#include "sensor/scan.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

sensor::CapacitivePixel paper_pixel() {
  const chip::BiochipDevice dev = chip::paper_device();
  sensor::CapacitivePixel px;
  px.electrode_area = dev.array().footprint({0, 0}).area();
  px.chamber_height = dev.config().chamber_height;
  px.sense_voltage = dev.drive_amplitude();
  return px;
}

void print_snr_law() {
  print_banner(std::cout, "C4: SNR vs frame averaging (sqrt-N thermal noise law)");
  const sensor::CapacitivePixel px = paper_pixel();
  const sensor::ScanTiming scan;
  const chip::ElectrodeArray array(320, 320, 20.0_um);
  Table t({"frames N", "SNR (10um cell)", "SNR (5um cell)", "SNR (2um bead)",
           "acq time [ms]", "fits 1 hop @50um/s"});
  for (std::size_t n : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    const double acq = scan.acquisition_time(array, n);
    t.row()
        .cell(std::to_string(n))
        .cell(px.averaged_snr(10.0_um, 10.5_um, 298.15, n), 1)
        .cell(px.averaged_snr(5.0_um, 5.5_um, 298.15, n), 1)
        .cell(px.averaged_snr(2.0_um, 2.2_um, 298.15, n), 2)
        .cell(acq * 1e3, 1)
        .cell(acq <= chip::pitch_transit_time(20.0_um, 50e-6) ? "yes" : "no");
  }
  t.print(std::cout);
  const std::size_t n_needed = sensor::frames_for_snr(px, 2.0_um, 2.2_um, 298.15, 5.0);
  std::cout << "\nShape check: SNR grows exactly sqrt(N). A 2 um bead (sub-unity\n"
               "single-frame SNR) reaches the 5-sigma detection point at N = "
            << n_needed << " frames\n— time bought from the slow mass transfer of C3.\n";
}

void print_detection_vs_averaging() {
  print_banner(std::cout, "C4: detection quality vs averaging (3 um beads, 48x48 tile)");
  const chip::ElectrodeArray array(48, 48, 20.0_um);
  const sensor::CapacitivePixel px = paper_pixel();
  sensor::FrameSynthesizer synth(array, px, 298.15, 1234);

  // Ground truth: 12 beads on a loose grid.
  std::vector<sensor::FrameTarget> targets;
  std::vector<Vec2> truth;
  for (int i = 0; i < 12; ++i) {
    const double x = (6.0 + 10.0 * (i % 4)) * 20.0_um;
    const double y = (8.0 + 12.0 * (i / 4)) * 20.0_um;
    targets.push_back({{x, y, 3.3_um}, 3.0_um});
    truth.push_back({x, y});
  }

  Table t({"frames N", "recall", "precision", "mean loc err [um]"});
  Rng rng(42);
  for (std::size_t n : {1u, 4u, 16u, 64u, 256u}) {
    // Average detection stats over trials for stable rows.
    double recall = 0, precision = 0, loc = 0;
    const int kTrials = 8;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Grid2 frame = synth.averaged_frame(targets, rng, n);
      const double sigma = synth.cds_noise_sigma() / std::sqrt(static_cast<double>(n));
      const auto dets = sensor::detect_threshold(frame, array, 4.5 * sigma);
      const auto stats = sensor::match_detections(truth, dets, 40.0_um);
      recall += stats.recall();
      precision += stats.precision();
      loc += stats.mean_localization_error;
    }
    t.row()
        .cell(std::to_string(n))
        .cell(recall / kTrials, 3)
        .cell(precision / kTrials, 3)
        .cell(loc / kTrials * 1e6, 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: recall climbs from chance to ~1.0 as averaging deepens;\n"
               "precision stays high because the threshold tracks the averaged noise.\n";
}

void print_roc_vs_averaging() {
  print_banner(std::cout, "C4: average precision (ROC) vs frame averaging");
  const chip::ElectrodeArray array(48, 48, 20.0_um);
  const sensor::CapacitivePixel px = paper_pixel();
  sensor::FrameSynthesizer synth(array, px, 298.15, 4321);
  std::vector<sensor::FrameTarget> targets;
  std::vector<Vec2> truth;
  for (int i = 0; i < 9; ++i) {
    const double x = (8.0 + 12.0 * (i % 3)) * 20.0_um;
    const double y = (8.0 + 12.0 * (i / 3)) * 20.0_um;
    targets.push_back({{x, y, 3.3_um}, 3.0_um});
    truth.push_back({x, y});
  }
  Table t({"frames N", "average precision", "best 5-sigma recall"});
  Rng rng(17);
  for (std::size_t n : {1u, 8u, 64u, 512u}) {
    double ap = 0.0, recall = 0.0;
    const int kTrials = 6;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Grid2 frame = synth.averaged_frame(targets, rng, n);
      const double sigma =
          synth.cds_noise_sigma() / std::sqrt(static_cast<double>(n));
      const auto sweep = sensor::roc_sweep(
          frame, array, truth, sensor::log_thresholds(2.0 * sigma, 200.0 * sigma, 13),
          40.0_um);
      ap += sensor::average_precision(sweep);
      const auto at5 = sensor::roc_sweep(frame, array, truth, {5.0 * sigma}, 40.0_um);
      recall += at5.front().recall;
    }
    t.row().cell(std::to_string(n)).cell(ap / kTrials, 3).cell(recall / kTrials, 3);
  }
  t.print(std::cout);
  std::cout << "\nShape check: average precision climbs toward 1.0 with averaging\n"
               "depth — the ROC restatement of the C4 trade.\n";
}

void bm_frame_synthesis(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  sensor::FrameSynthesizer synth(array, paper_pixel(), 298.15, 7);
  std::vector<sensor::FrameTarget> targets{{{300.0_um, 300.0_um, 5.5_um}, 5.0_um}};
  Rng rng(1);
  for (auto _ : state) {
    Grid2 f = synth.cds_frame(targets, rng);
    benchmark::DoNotOptimize(f.data().data());
  }
}

void bm_threshold_detection(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  sensor::FrameSynthesizer synth(array, paper_pixel(), 298.15, 7);
  std::vector<sensor::FrameTarget> targets{{{300.0_um, 300.0_um, 5.5_um}, 5.0_um}};
  Rng rng(1);
  const Grid2 frame = synth.averaged_frame(targets, rng, 64);
  for (auto _ : state) {
    auto dets = sensor::detect_threshold(frame, array, synth.cds_noise_sigma() / 8.0);
    benchmark::DoNotOptimize(dets.data());
  }
}

BENCHMARK(bm_frame_synthesis)->Arg(64)->Arg(320)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_threshold_detection)->Arg(64)->Arg(320)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_snr_law();
  print_detection_vs_averaging();
  print_roc_vs_averaging();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
