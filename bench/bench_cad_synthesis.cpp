// Experiment CAD-S — end-to-end assay synthesis (schedule -> place -> route)
// on the reconstructed benchmark suite, with the two ablations DESIGN.md
// calls out: list vs FIFO scheduling and resource/array sweeps. Also shows
// the C3 connection: total assay time is transport- (mass-transfer-)
// dominated, not electronics-dominated.

#include <benchmark/benchmark.h>

#include <iostream>

#include "cad/benchmarks.hpp"
#include "cad/binding.hpp"
#include "cad/synthesis.hpp"
#include "common/table.hpp"

using namespace biochip;
using namespace biochip::cad;

namespace {

SynthesisConfig default_config() {
  SynthesisConfig cfg;
  cfg.dims = {96, 96};
  cfg.resources = {6, 0, 4};
  cfg.step_period = 0.4;  // 20 um pitch at 50 um/s
  return cfg;
}

void print_suite_table() {
  print_banner(std::cout, "CAD-S: benchmark suite synthesis (96x96 sites, 6 mixers)");
  Table t({"assay", "ops", "crit.path [s]", "schedule [s]", "transport [s]",
           "total [s]", "moves", "ok"});
  for (const AssayGraph& g : benchmark_suite()) {
    const SynthesisResult r = synthesize(g, default_config());
    t.row()
        .cell(g.name())
        .cell(std::to_string(g.size()))
        .cell(g.critical_path(), 1)
        .cell(r.processing_makespan, 1)
        .cell(r.transport_time, 1)
        .cell(r.total_time, 1)
        .cell(r.transport_moves)
        .cell(r.success ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "\nShape check: transport is a first-class term (often comparable to\n"
               "processing) because the clock of this chip is cage speed, not the\n"
               "electronics — the CAD-level echo of claim C3.\n";
}

void print_scheduler_ablation() {
  print_banner(std::cout, "CAD-S ablation: list scheduler vs FIFO baseline");
  Table t({"assay", "mixers", "FIFO makespan [s]", "list makespan [s]", "speedup"});
  for (int mixers : {2, 4, 8}) {
    for (const AssayGraph& g : {invitro_diagnostics(3, 3), serial_dilution(7)}) {
      SynthesisConfig lst = default_config();
      lst.resources.mixers = mixers;
      SynthesisConfig fifo = lst;
      fifo.list_scheduler = false;
      const SynthesisResult a = synthesize(g, fifo);
      const SynthesisResult b = synthesize(g, lst);
      t.row()
          .cell(g.name())
          .cell(mixers)
          .cell(a.processing_makespan, 1)
          .cell(b.processing_makespan, 1)
          .cell(a.processing_makespan / b.processing_makespan, 3);
    }
  }
  t.print(std::cout);
}

void print_resource_sweep() {
  print_banner(std::cout, "CAD-S: makespan vs mixer count (ivd_s3r3)");
  const AssayGraph g = invitro_diagnostics(3, 3);
  Table t({"mixers", "schedule [s]", "transport [s]", "total [s]", "ok"});
  for (int mixers : {1, 2, 4, 8, 16}) {
    SynthesisConfig cfg = default_config();
    cfg.resources.mixers = mixers;
    const SynthesisResult r = synthesize(g, cfg);
    t.row()
        .cell(mixers)
        .cell(r.processing_makespan, 1)
        .cell(r.transport_time, 1)
        .cell(r.total_time, 1)
        .cell(r.success ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "\nShape check: makespan saturates once mixers stop being the\n"
               "bottleneck; pushing parallelism further only adds routing traffic.\n";
}

void print_cell_speed_sweep() {
  print_banner(std::cout, "CAD-S: total assay time vs cage speed (pcr_mix, paper band)");
  const AssayGraph g = pcr_mix(3);
  Table t({"cage speed [um/s]", "step period [s]", "transport [s]", "total [s]"});
  for (double speed_um : {10.0, 25.0, 50.0, 100.0}) {
    SynthesisConfig cfg = default_config();
    cfg.step_period = 20e-6 / (speed_um * 1e-6);
    const SynthesisResult r = synthesize(g, cfg);
    t.row()
        .cell(speed_um, 0)
        .cell(cfg.step_period, 2)
        .cell(r.transport_time, 1)
        .cell(r.total_time, 1);
  }
  t.print(std::cout);
}

void print_binding_ablation() {
  print_banner(std::cout,
               "CAD-S ablation: module binding (area/latency trade of mixers)");
  cad::ModuleLibrary all_compact;
  all_compact.types = {{"compact_4x4", 4, 1.6, 8}};
  cad::ModuleLibrary all_standard;
  all_standard.types = {{"standard_6x6", 6, 1.0, 4}};
  cad::ModuleLibrary all_fast;
  all_fast.types = {{"fast_8x8", 8, 0.5, 2}};
  const cad::ModuleLibrary mixed = cad::default_module_library();
  Table t({"assay", "compact x8 [s]", "standard x4 [s]", "fast x2 [s]",
           "mixed library [s]"});
  for (const cad::AssayGraph& g : {cad::pcr_mix(3), cad::invitro_diagnostics(3, 3),
                                   cad::serial_dilution(7)}) {
    auto makespan = [&](const cad::ModuleLibrary& lib) {
      const cad::BoundSchedule b = cad::bind_list_schedule(g, lib);
      cad::check_bound_schedule(g, lib, b);
      return b.makespan;
    };
    t.row()
        .cell(g.name())
        .cell(makespan(all_compact), 1)
        .cell(makespan(all_standard), 1)
        .cell(makespan(all_fast), 1)
        .cell(makespan(mixed), 1);
  }
  t.print(std::cout);
  std::cout << "\nShape check: two fast mixers beat eight compact ones on the\n"
               "serial (dilution) assay where the critical path rules; the wide IVD\n"
               "assay prefers module count; the mixed library takes the best of\n"
               "both — the classic HLS area/latency curve on a biochip.\n";
}

void bm_synthesize(benchmark::State& state) {
  const std::vector<AssayGraph> suite = benchmark_suite();
  const AssayGraph& g = suite[static_cast<std::size_t>(state.range(0))];
  const SynthesisConfig cfg = default_config();
  for (auto _ : state) {
    SynthesisResult r = synthesize(g, cfg);
    benchmark::DoNotOptimize(r.total_time);
  }
  state.SetLabel(g.name());
}

void bm_schedule_only(benchmark::State& state) {
  const AssayGraph g = invitro_diagnostics(4, 4);
  const ChipResources res{6, 0, 4};
  for (auto _ : state) {
    Schedule s = list_schedule(g, res);
    benchmark::DoNotOptimize(s.makespan);
  }
}

BENCHMARK(bm_synthesize)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_schedule_only)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_suite_table();
  print_scheduler_ablation();
  print_binding_ablation();
  print_resource_sweep();
  print_cell_speed_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
