// Experiment Y-1 — why the array architecture survives manufacturing
// defects (an enabling condition for §1's "cheaper, better, faster" thesis
// that the paper leaves implicit): a defective pixel costs one cage site,
// not the die. Compares the classic all-pixels-good Poisson yield against
// the measured usable-cage fraction, across defect densities and array
// sizes.

#include <benchmark/benchmark.h>

#include <iostream>

#include "chip/defects.hpp"
#include "chip/device.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

void print_yield_table() {
  print_banner(std::cout,
               "Y-1: all-good die yield vs usable-cage fraction (320x320)");
  const chip::ElectrodeArray array(320, 320, 20.0_um);
  Table t({"defect prob/pixel", "all-good yield", "usable cages (analytic)",
           "usable cages (sampled)", "cages left (of 24964)"});
  Rng rng(11);
  for (double p : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    const chip::DefectMap map = chip::sample_defects(array, p, rng);
    const double usable = chip::usable_cage_fraction(array, map);
    t.row()
        .cell(p, 6)
        .cell(chip::all_good_yield(array, p), 4)
        .cell(chip::expected_usable_fraction(p), 4)
        .cell(usable, 4)
        .cell(static_cast<long>(usable * 24964.0));
  }
  t.print(std::cout);
  std::cout << "\nShape check: at 1e-4 defects/pixel the all-good yield is ~0 (no\n"
               "die would ship as a memory without repair), yet 99.9% of cage sites\n"
               "remain usable — the CAD layer simply routes around the rest. The\n"
               "array IS its own redundancy.\n";
}

void print_array_size_sweep() {
  print_banner(std::cout, "Y-1: yield vs array size at 1e-4 defects/pixel");
  Table t({"array", "pixels", "all-good yield", "usable cages"});
  Rng rng(13);
  for (int side : {64, 128, 256, 320, 512}) {
    const chip::ElectrodeArray array(side, side, 20.0_um);
    const chip::DefectMap map = chip::sample_defects(array, 1e-4, rng);
    t.row()
        .cell(std::to_string(side) + "x" + std::to_string(side))
        .cell(std::to_string(array.electrode_count()))
        .cell(chip::all_good_yield(array, 1e-4), 4)
        .cell(chip::usable_cage_fraction(array, map), 4);
  }
  t.print(std::cout);
  std::cout << "\nShape check: the all-good yield collapses exponentially with array\n"
               "area; the usable-cage fraction is size-independent — the bigger the\n"
               "array, the bigger the architectural win.\n";
}

void bm_defect_sampling(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  Rng rng(1);
  for (auto _ : state) {
    chip::DefectMap map = chip::sample_defects(array, 1e-4, rng);
    benchmark::DoNotOptimize(map.defect_count());
  }
}

void bm_usable_fraction(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  Rng rng(1);
  const chip::DefectMap map = chip::sample_defects(array, 1e-4, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(chip::usable_cage_fraction(array, map));
}

BENCHMARK(bm_defect_sampling)->Arg(320)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_usable_fraction)->Arg(320)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_yield_table();
  print_array_size_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
