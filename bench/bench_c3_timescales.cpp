// Experiment C3 — "cells move, in response to DEP forces, at a typical rate
// of 10-100 microns per second, which means that we have plenty of time
// (from an electronic point of view) to program the actuator array, scan
// sensor output etc." (paper §2)
//
// Quantifies the electronics-vs-mass-transfer headroom across array sizes,
// interface clocks, and cell speeds.

#include <benchmark/benchmark.h>

#include <iostream>

#include "chip/device.hpp"
#include "chip/timing.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sensor/scan.hpp"

using namespace biochip;
using namespace biochip::units;

namespace {

void print_headroom_table() {
  print_banner(std::cout,
               "C3: electronics vs mass transfer (20 um pitch; paper: 10-100 um/s)");
  Table t({"array", "clock [MHz]", "program full [ms]", "scan frame [ms]",
           "transit @10um/s [s]", "transit @100um/s [s]", "headroom @100um/s"});
  for (int side : {64, 320, 1024}) {
    for (double clock : {1.0_MHz, 10.0_MHz, 100.0_MHz}) {
      const chip::ElectrodeArray array(side, side, 20.0_um);
      chip::ProgrammingModel pm;
      pm.clock_frequency = clock;
      sensor::ScanTiming scan;
      const double t_prog = pm.full_program_time(array);
      const double t_frame = scan.frame_time(array);
      t.row()
          .cell(std::to_string(side) + "x" + std::to_string(side))
          .cell(clock / 1e6, 0)
          .cell(t_prog * 1e3, 3)
          .cell(t_frame * 1e3, 2)
          .cell(chip::pitch_transit_time(20.0_um, 10e-6), 1)
          .cell(chip::pitch_transit_time(20.0_um, 100e-6), 1)
          .cell(chip::timing_headroom(array, pm, 100e-6), 0);
    }
  }
  t.print(std::cout);
  std::cout << "\nShape check: even the most hostile corner (1 MHz clock, 1024^2\n"
               "array, 100 um/s cells) still reprograms the whole chip faster than\n"
               "a cell crosses ONE pitch; at the paper's operating point (320^2,\n"
               "10 MHz) the headroom is 10^2-10^5 — 'plenty of time', as §2 puts it.\n";
}

void print_update_budget() {
  print_banner(std::cout, "C3: what fits inside one 20 um cage hop (0.4 s @ 50 um/s)");
  const chip::ElectrodeArray array(320, 320, 20.0_um);
  chip::ProgrammingModel pm;
  sensor::ScanTiming scan;
  const double budget = chip::pitch_transit_time(20.0_um, 50e-6);
  Table t({"operation", "unit time", "ops per hop"});
  const double t_prog = pm.full_program_time(array);
  const double t_incr = pm.incremental_program_time(2);
  const double t_frame = scan.frame_time(array);
  t.row().cell("full array reprogram").cell_si(t_prog, "s").cell(budget / t_prog, 0);
  t.row().cell("single cage move (2 px)").cell_si(t_incr, "s").cell(budget / t_incr, 0);
  t.row().cell("full sensor frame").cell_si(t_frame, "s").cell(budget / t_frame, 0);
  t.print(std::cout);
  std::cout << "\nThis is the paper's 'trade time for quality' budget: ~"
            << static_cast<int>(budget / t_frame)
            << " full frames can be averaged while the cell crawls one pitch.\n";
}

void bm_full_program_time_model(benchmark::State& state) {
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  chip::ProgrammingModel pm;
  for (auto _ : state) benchmark::DoNotOptimize(pm.full_program_time(array));
}

void bm_pattern_generation(benchmark::State& state) {
  // Actual host-side cost of building a whole-array pattern.
  const chip::ElectrodeArray array(static_cast<int>(state.range(0)),
                                   static_cast<int>(state.range(0)), 20.0_um);
  for (auto _ : state) {
    chip::ActuationPattern p = chip::background(array);
    benchmark::DoNotOptimize(p);
  }
}

BENCHMARK(bm_full_program_time_model)->Arg(320)->Unit(benchmark::kNanosecond);
BENCHMARK(bm_pattern_generation)->Arg(320)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_headroom_table();
  print_update_budget();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
