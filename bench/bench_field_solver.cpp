// Experiment S-1 — field-solver engineering: SOR vs cascade vs multigrid
// V-cycle scaling (with fine-grid-equivalent work accounting), solver
// accuracy against the analytic parallel-plate solution, and the
// superposition-cache ablation that makes many-pattern simulation
// tractable (DESIGN.md §5).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <iostream>

#include "chip/device.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "field/analytic.hpp"
#include "field/basis_cache.hpp"
#include "field/boundary.hpp"
#include "field/incremental.hpp"
#include "field/phasor.hpp"
#include "field/solver.hpp"
#include "field/stencil_kernel.hpp"

using namespace biochip;
using namespace biochip::units;
using namespace biochip::field;

namespace {

DirichletBc plate_bc(const Grid3& g, double v_bottom, double v_top) {
  DirichletBc bc = DirichletBc::all_free(g);
  for (std::size_t j = 0; j < g.ny(); ++j)
    for (std::size_t i = 0; i < g.nx(); ++i) {
      bc.fixed[g.index(i, j, 0)] = 1;
      bc.value[g.index(i, j, 0)] = v_bottom;
      bc.fixed[g.index(i, j, g.nz() - 1)] = 1;
      bc.value[g.index(i, j, g.nz() - 1)] = v_top;
    }
  return bc;
}

// The cage-electrode workload shared with tests/test_field.cpp: see
// cage_reference_bc in field/boundary.hpp. Unlike the parallel-plate
// problem — whose solution is linear in z, so nested iteration interpolates
// it exactly and converges in one fine sweep — this is a genuinely 3D
// workload on which the multilevel strategies earn their keep;
// bm_multilevel / bm_cascade run on it for exactly that reason.
DirichletBc cage_bc(const Grid3& g, double v) { return cage_reference_bc(g, v); }

void print_solver_scaling() {
  print_banner(
      std::cout,
      "S-1: SOR vs cascade vs V-cycle vs FMG (cage-electrode BC, matched residual)");
  Table t({"grid", "SOR fe-sweeps", "cascade fe-sweeps", "vcycle fe-sweeps",
           "fmg fe-sweeps", "fmg cycles", "residual [V]", "cascade/fmg"});
  for (std::size_t n : {17u, 33u, 65u}) {
    Grid3 a(n, n, n, 1e-6), b(n, n, n, 1e-6), c(n, n, n, 1e-6), d(n, n, n, 1e-6);
    const DirichletBc bc = cage_bc(a, 3.3);
    SolverOptions plain;
    plain.multilevel = false;
    SolverOptions cascade;
    cascade.cycle = CycleType::cascade;
    const SolveStats sa = solve_laplace(a, bc, plain);
    const SolveStats sb = solve_laplace(b, bc, cascade);
    // The cycles target the residual the cascade actually achieved, so the
    // work columns compare equal-quality solves.
    SolverOptions vcycle;
    vcycle.cycle = CycleType::vcycle;
    vcycle.cycle_tolerance = laplacian_residual(b, bc);
    const SolveStats sc = solve_laplace(c, bc, vcycle);
    SolverOptions fmg;
    fmg.cycle = CycleType::fmg;
    fmg.cycle_tolerance = vcycle.cycle_tolerance;
    const SolveStats sd = solve_laplace(d, bc, fmg);
    t.row()
        .cell(std::to_string(n) + "^3")
        .cell(sa.fine_equiv_sweeps, 1)
        .cell(sb.fine_equiv_sweeps, 1)
        .cell(sc.fine_equiv_sweeps, 1)
        .cell(sd.fine_equiv_sweeps, 1)
        .cell(std::to_string(sd.cycles))
        .cell(laplacian_residual(d, bc), 9)
        .cell(sb.fine_equiv_sweeps / sd.fine_equiv_sweeps, 2);
  }
  t.print(std::cout);
  std::cout << "\nShape check: the cascade's fine-equivalent work grows with grid\n"
               "size (it only improves the initial guess); the V-cycle corrects\n"
               "fine-grid error on coarse grids, so its work per solve stays\n"
               "nearly flat; FMG prepends the nested-iteration start and cuts\n"
               "another cycle or two off the fine-level iteration.\n";

  print_banner(std::cout,
               "S-1: thin-gap (1-node) calibration patch — RAP coarse operators");
  Table tg({"grid", "vcycle rho/cycle", "cascade fe-sweeps", "vcycle fe-sweeps",
            "fmg fe-sweeps", "fallback sweeps"});
  for (std::size_t n : {33u, 65u}) {
    Grid3 a(n, n, n, 1e-6), b(n, n, n, 1e-6), c(n, n, n, 1e-6);
    const DirichletBc bc = cage_thin_gap_bc(a, 3.3, 1);
    const auto residual_after = [&](std::size_t cycles) {
      Grid3 phi(n, n, n, 1e-6);
      SolverOptions o;
      o.cycle = CycleType::vcycle;
      o.cycle_tolerance = 1e-300;
      o.max_cycles = cycles;
      o.max_sweeps = 0;
      return solve_laplace(phi, bc, o).final_residual;
    };
    const double rho = std::sqrt(residual_after(4) / residual_after(2));
    SolverOptions cascade;
    cascade.cycle = CycleType::cascade;
    const SolveStats sa = solve_laplace(a, bc, cascade);
    SolverOptions vcycle;
    vcycle.cycle = CycleType::vcycle;
    vcycle.cycle_tolerance = laplacian_residual(a, bc);
    const SolveStats sb = solve_laplace(b, bc, vcycle);
    SolverOptions fmg;
    fmg.cycle = CycleType::fmg;
    fmg.cycle_tolerance = vcycle.cycle_tolerance;
    const SolveStats sc = solve_laplace(c, bc, fmg);
    // Any sweep beyond the per-cycle budget would be fallback tail work;
    // with RAP coarse operators this column must read 0.
    const std::size_t fallback =
        sb.sweeps - sb.cycles * (vcycle.pre_smooth + vcycle.post_smooth);
    tg.row()
        .cell(std::to_string(n) + "^3")
        .cell(rho, 4)
        .cell(sa.fine_equiv_sweeps, 1)
        .cell(sb.fine_equiv_sweeps, 1)
        .cell(sc.fine_equiv_sweeps, 1)
        .cell(std::to_string(fallback));
  }
  tg.print(std::cout);
  std::cout << "\nShape check: before the Galerkin (RAP) coarse operators this BC\n"
               "stalled the cycle (injected coarse masks erase a 1-node gap) and\n"
               "bailed out to the cascade; now the contraction is grid-independent\n"
               "and the fallback column is zero.\n";

  print_banner(std::cout, "S-1: plate-problem accuracy (both strategies, tol 1e-6)");
  Table t2({"grid", "vcycle err vs analytic [V]", "cascade err vs analytic [V]"});
  for (std::size_t n : {17u, 33u, 65u}) {
    Grid3 b(n, n, n, 1e-6), c(n, n, n, 1e-6);
    const DirichletBc bc = plate_bc(b, 0.0, 3.3);
    SolverOptions cascade;
    cascade.cycle = CycleType::cascade;
    SolverOptions vcycle;
    vcycle.cycle = CycleType::vcycle;
    solve_laplace(b, bc, cascade);
    solve_laplace(c, bc, vcycle);
    const double gap = static_cast<double>(n - 1) * 1e-6;
    double errb = 0.0, errc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double expect =
          parallel_plate_potential(0.0, 3.3, gap, static_cast<double>(k) * 1e-6);
      errb = std::max(errb, std::fabs(b.at(n / 2, n / 2, k) - expect));
      errc = std::max(errc, std::fabs(c.at(n / 2, n / 2, k) - expect));
    }
    t2.row().cell(std::to_string(n) + "^3").cell(errc, 6).cell(errb, 6);
  }
  t2.print(std::cout);
}

void print_superposition_ablation() {
  print_banner(std::cout,
               "S-1 ablation: superposition cache vs direct solve (5x5 patch)");
  const double pitch = 20.0_um;
  ChamberDomain domain{5 * pitch, 5 * pitch, 5 * pitch, pitch / 4.0};
  std::vector<Rect> footprints;
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 5; ++c) {
      const double x0 = c * pitch + 0.1 * pitch, y0 = r * pitch + 0.1 * pitch;
      footprints.push_back({{x0, y0}, {x0 + 0.8 * pitch, y0 + 0.8 * pitch}});
    }
  BasisCache cache(domain, footprints, true);

  // Time K pattern evaluations both ways.
  const int kPatterns = 16;
  auto make_drive = [&](int k) {
    std::vector<std::complex<double>> drive(25, {-3.3, 0.0});
    drive[static_cast<std::size_t>(k) % 25] = {3.3, 0.0};
    return drive;
  };

  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (int k = 0; k < kPatterns; ++k)
    acc += cache.compose(make_drive(k), {3.3, 0.0}).erms2_at({50.0_um, 50.0_um, 20.0_um});
  const auto t1 = std::chrono::steady_clock::now();
  for (int k = 0; k < kPatterns; ++k)
    acc +=
        cache.solve_direct(make_drive(k), {3.3, 0.0}).erms2_at({50.0_um, 50.0_um, 20.0_um});
  const auto t2 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(acc);

  const double t_compose =
      std::chrono::duration<double>(t1 - t0).count() / kPatterns;
  const double t_direct = std::chrono::duration<double>(t2 - t1).count() / kPatterns;
  Table t({"path", "per-pattern time [ms]", "speedup", "one-time cost"});
  t.row().cell("direct solve").cell(t_direct * 1e3, 2).cell(1.0, 1).cell("-");
  t.row()
      .cell("superposition cache")
      .cell(t_compose * 1e3, 2)
      .cell(t_direct / t_compose, 1)
      .cell(std::to_string(cache.solves_performed()) + " basis solves");
  t.print(std::cout);

  // Accuracy of the composed field vs direct.
  std::vector<std::complex<double>> drive = make_drive(12);
  const PhasorSolution composed = cache.compose(drive, {3.3, 0.0});
  const PhasorSolution direct = cache.solve_direct(drive, {3.3, 0.0});
  double worst = 0.0;
  for (std::size_t n = 0; n < composed.phi_re().size(); ++n)
    worst = std::max(worst, std::fabs(composed.phi_re().data()[n] -
                                      direct.phi_re().data()[n]));
  std::cout << "\nComposition error vs direct solve: " << si_format(worst, "V")
            << " (superposition is exact up to solver tolerance).\n";
}

void print_cage_convergence() {
  print_banner(std::cout, "S-1: cage calibration vs grid resolution (paper device)");
  const chip::BiochipDevice dev = chip::paper_device();
  Table t({"nodes/pitch", "cage z [um]", "c_r [V^2/m^4]", "c_z [V^2/m^4]"});
  MultigridWorkspace workspace;  // re-derived only when npp changes the shape
  for (int npp : {4, 6, 8, 10}) {
    const HarmonicCage cage = dev.calibrate_cage(5, npp, &workspace);
    t.row()
        .cell(npp)
        .cell(cage.center.z * 1e6, 2)
        .cell(cage.c_r, 3)
        .cell(cage.c_z, 3);
  }
  t.print(std::cout);
  std::cout << "\nShape check: calibrated curvatures settle to within ~10% by 6-8\n"
               "nodes/pitch — the default used throughout the framework.\n";
}

void bm_sor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = plate_bc(g, 0.0, 3.3);
    SolverOptions opts;
    opts.multilevel = false;
    SolveStats s = solve_laplace(g, bc, opts);
    benchmark::DoNotOptimize(s.sweeps);
  }
}

// Production multilevel path: the V-cycle on the cage-electrode BC. (The
// historical bm_multilevel measured the cascade on the plate problem, which
// nested iteration solves exactly by interpolation — a degenerate case; see
// docs/perf.md for the trajectory discontinuity note.)
void bm_multilevel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double fe = 0.0;
  for (auto _ : state) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = cage_bc(g, 3.3);
    SolverOptions opts;
    opts.cycle = CycleType::vcycle;
    SolveStats s = solve_laplace(g, bc, opts);
    fe = s.fine_equiv_sweeps;
    benchmark::DoNotOptimize(s.sweeps);
  }
  state.counters["fe_sweeps"] = fe;
}

// The nested-iteration oracle on the same workload, for the head-to-head.
void bm_cascade(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double fe = 0.0;
  for (auto _ : state) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = cage_bc(g, 3.3);
    SolverOptions opts;
    opts.cycle = CycleType::cascade;
    SolveStats s = solve_laplace(g, bc, opts);
    fe = s.fine_equiv_sweeps;
    benchmark::DoNotOptimize(s.sweeps);
  }
  state.counters["fe_sweeps"] = fe;
}

// The production repeated-solve pattern (basis-cache builds, phasor
// quadrature pairs): the Galerkin hierarchy is prepared once in a shared
// MultigridWorkspace and reused, so the RAP build cost amortizes away.
// bm_multilevel measures the cold path (fresh workspace per solve).
void bm_vcycle_warm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MultigridWorkspace workspace;
  double fe = 0.0;
  for (auto _ : state) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = cage_bc(g, 3.3);
    SolverOptions opts;
    opts.cycle = CycleType::vcycle;
    SolveStats s = solve_laplace(g, bc, opts, &workspace);
    fe = s.fine_equiv_sweeps;
    benchmark::DoNotOptimize(s.sweeps);
  }
  state.counters["fe_sweeps"] = fe;
  // Accuracy column: the warm-workspace solve against a cold oracle solve of
  // the same problem (fresh hierarchy each time). The shared-workspace path
  // is bit-identical to the cold path, so this must read 0.
  Grid3 warm(n, n, n, 1e-6), cold(n, n, n, 1e-6);
  const DirichletBc bc = cage_bc(warm, 3.3);
  SolverOptions opts;
  opts.cycle = CycleType::vcycle;
  solve_laplace(warm, bc, opts, &workspace);
  solve_laplace(cold, bc, opts);
  double worst = 0.0;
  for (std::size_t m = 0; m < warm.size(); ++m)
    worst = std::max(worst, std::fabs(warm.data()[m] - cold.data()[m]));
  state.counters["oracle_max_err"] = worst;
}

// Incremental dirty-region repair vs full-solve-per-tick on a 65^3-scale
// tile: 16x16 electrodes at 4 nodes/pitch under a 16-pitch-tall chamber
// (65x65x65 nodes). Each benchmark iteration is one closed-loop tick — a
// trapped cage hops to a lateral neighbour, its electrode drive follows, and
// the tracked potential is repaired. range(0) is the re-anchor period:
//   1  = full solve every tick (the baseline the speedup is measured against)
//   16 = production cadence (windowed corrections, periodic full re-anchor)
//   0  = pure windowed corrections, never re-anchored
// Counters carry the accuracy column for run_benches.sh: max-|dphi| of the
// final tracked state against a freshly solved full-grid oracle, plus the
// mean window volume fraction (the per-tick work ratio).
void bm_incremental(benchmark::State& state) {
  const auto period = static_cast<std::size_t>(state.range(0));
  const double pitch = 20.0_um;
  const std::size_t cols = 16, rows = 16;
  ChamberDomain domain{cols * pitch, rows * pitch, 16 * pitch, pitch / 4.0};
  std::vector<Rect> footprints;
  footprints.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const double x0 = static_cast<double>(c) * pitch + 0.1 * pitch;
      const double y0 = static_cast<double>(r) * pitch + 0.1 * pitch;
      footprints.push_back({{x0, y0}, {x0 + 0.8 * pitch, y0 + 0.8 * pitch}});
    }
  SolverOptions opts;
  opts.incremental.reanchor_period = period;
  IncrementalPotential tracker(domain, footprints, /*lid_present=*/false, pitch,
                               opts);

  // Prime with one trapped cage at the tile centre, then walk it around a
  // closed 4-hop loop (E, N, W, S) so every tick changes two drives.
  std::vector<double> drive(cols * rows, 0.0);
  std::size_t cage = (rows / 2) * cols + cols / 2;
  drive[cage] = 1.0;
  tracker.update(drive);
  const std::ptrdiff_t hop[4] = {+1, static_cast<std::ptrdiff_t>(cols), -1,
                                 -static_cast<std::ptrdiff_t>(cols)};
  int dir = 0;
  double fraction = 0.0, ticks = 0.0;
  for (auto _ : state) {
    drive[cage] = 0.0;
    cage = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(cage) + hop[dir]);
    dir = (dir + 1) & 3;
    drive[cage] = 1.0;
    const IncrementalPotential::UpdateReport rep = tracker.update(drive);
    fraction += rep.window_fraction;
    ticks += 1.0;
    benchmark::DoNotOptimize(rep.stats.sweeps);
  }
  const Grid3 oracle = tracker.oracle();
  double worst = 0.0;
  for (std::size_t m = 0; m < oracle.size(); ++m)
    worst = std::max(worst, std::fabs(tracker.potential().data()[m] -
                                      oracle.data()[m]));
  state.counters["oracle_max_err"] = worst;
  state.counters["window_fraction"] = ticks > 0.0 ? fraction / ticks : 0.0;
}

// Full multigrid on the same workload: nested-iteration start + per-level
// V-cycles over the Galerkin hierarchy.
void bm_fmg(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double fe = 0.0;
  for (auto _ : state) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = cage_bc(g, 3.3);
    SolverOptions opts;
    opts.cycle = CycleType::fmg;
    SolveStats s = solve_laplace(g, bc, opts);
    fe = s.fine_equiv_sweeps;
    benchmark::DoNotOptimize(s.sweeps);
  }
  state.counters["fe_sweeps"] = fe;
}

// Thin-gap (1-node) calibration-patch BC: the geometry whose coarse masks
// lose the gap under injection. range(1) selects the strategy so the JSON
// carries the cascade/vcycle/fmg work trajectory on the RAP-critical case.
void bm_thin_gap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto strategy = static_cast<int>(state.range(1));
  double fe = 0.0;
  for (auto _ : state) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = cage_thin_gap_bc(g, 3.3, 1);
    SolverOptions opts;
    opts.cycle = strategy == 0   ? CycleType::cascade
                 : strategy == 1 ? CycleType::vcycle
                                 : CycleType::fmg;
    SolveStats s = solve_laplace(g, bc, opts);
    fe = s.fine_equiv_sweeps;
    benchmark::DoNotOptimize(s.sweeps);
  }
  state.counters["fe_sweeps"] = fe;
}

// Coarse-level variable-coefficient smoothing sweep: range(1) selects the
// kernel (0 = per-node smooth_plane_var, 1 = the broadcast fast path that
// reads uniform rows' 27 coefficients from one cache line instead of 27
// grid-sized streams). Both are bit-identical by construction, so the delta
// is pure coefficient traffic — the cost that makes a var sweep ~3× the
// 27/7 flop model in measured wall time (docs/perf.md).
void bm_var_smooth(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Grid3 g(n, n, n, 1e-6);
  const DirichletBc bc = cage_bc(g, 3.3);
  MultigridWorkspace ws;
  ws.prepare(g, bc);
  MultigridWorkspace::Level& lev = ws.levels().front();
  const stencil::Dims dims{lev.e.nx(), lev.e.ny(), lev.e.nz()};
  std::vector<double> rhs(lev.e.size());
  for (std::size_t m = 0; m < rhs.size(); ++m)
    rhs[m] = 1e-4 * static_cast<double>(m % 53);
  for (std::size_t m = 0; m < lev.e.size(); ++m)
    lev.e.data()[m] = lev.fixed[m] ? 0.0 : 1e-3 * static_cast<double>(m % 89);
  const bool bcast = state.range(1) == 1;
  double uniform_rows = 0.0;
  for (const std::uint8_t u : lev.row_uniform) uniform_rows += u;
  for (auto _ : state) {
    double u = 0.0;
    for (int color = 0; color < 2; ++color)
      for (std::size_t k = 0; k < dims.nz; ++k) {
        u = bcast ? stencil::smooth_plane_var_bcast(
                        lev.e.data().data(), lev.fixed.data(), lev.stencil.data(),
                        lev.row_uniform.data(), lev.uniform_stencil.data(),
                        lev.uniform_inv_diag, lev.inv_diag.data(), rhs.data(), dims,
                        1.15, color, k)
                  : stencil::smooth_plane_var(lev.e.data().data(), lev.fixed.data(),
                                              lev.stencil.data(), lev.inv_diag.data(),
                                              rhs.data(), dims, 1.15, color, k);
      }
    benchmark::DoNotOptimize(u);
  }
  state.counters["uniform_rows"] = uniform_rows;
  state.counters["rows"] = static_cast<double>(dims.ny * dims.nz);
}

// Plane-parallel checked-free sweep: range(0) = grid nodes per side,
// range(1) = pool lanes. On a single-core host lanes > 1 only measure pool
// overhead; on multi-core hosts the sweep scales with the lane count.
void bm_sor_threads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    Grid3 g(n, n, n, 1e-6);
    const DirichletBc bc = plate_bc(g, 0.0, 3.3);
    SolverOptions opts;
    opts.multilevel = false;
    opts.threads = threads;
    SolveStats s = solve_laplace(g, bc, opts);
    benchmark::DoNotOptimize(s.sweeps);
  }
}

BENCHMARK(bm_sor)->Arg(17)->Arg(33)->Arg(65)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_multilevel)->Arg(17)->Arg(33)->Arg(65)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_cascade)->Arg(17)->Arg(33)->Arg(65)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_vcycle_warm)->Arg(33)->Arg(65)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_incremental)->Arg(1)->Arg(16)->Arg(0)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_fmg)->Arg(17)->Arg(33)->Arg(65)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_thin_gap)
    ->Args({33, 0})
    ->Args({33, 1})
    ->Args({33, 2})
    ->Args({65, 0})
    ->Args({65, 1})
    ->Args({65, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_var_smooth)
    ->Args({65, 0})
    ->Args({65, 1})
    ->Args({129, 0})
    ->Args({129, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_sor_threads)
    ->Args({65, 1})
    ->Args({65, 2})
    ->Args({65, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_solver_scaling();
  print_superposition_ablation();
  print_cage_convergence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
