// Experiment CAD-R — router comparison on the reconstructed benchmark
// suite's transfer patterns plus synthetic stress patterns. No canonical
// 2005 benchmark set exists ("Wild West"); patterns follow the DMFB routing
// literature: random scatter, perimeter permutation, and convergent flows.
//
// Metrics: completion rate, latest arrival (makespan steps), total moves —
// greedy baseline vs time-expanded prioritized A*.

#include <benchmark/benchmark.h>

#include <iostream>

#include "cad/route.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

using namespace biochip;
using namespace biochip::cad;

namespace {

// Random scatter: n cages, random separated sources and targets.
std::vector<RouteRequest> scatter_case(int n, int side, Rng& rng) {
  std::vector<RouteRequest> reqs;
  std::vector<GridCoord> froms, tos;
  int id = 0;
  int guard = 0;
  while (static_cast<int>(reqs.size()) < n && ++guard < 10000) {
    const GridCoord from{static_cast<int>(rng.uniform_int(0, side - 1)),
                         static_cast<int>(rng.uniform_int(0, side - 1))};
    const GridCoord to{static_cast<int>(rng.uniform_int(0, side - 1)),
                       static_cast<int>(rng.uniform_int(0, side - 1))};
    bool ok = true;
    for (const GridCoord f : froms)
      if (chebyshev(from, f) < 2) ok = false;
    for (const GridCoord t : tos)
      if (chebyshev(to, t) < 2) ok = false;
    if (!ok) continue;
    froms.push_back(from);
    tos.push_back(to);
    reqs.push_back({id++, from, to});
  }
  return reqs;
}

// Perimeter permutation: cages on the boundary swap to rotated positions —
// maximal crossing traffic through the center.
std::vector<RouteRequest> rotation_case(int n, int side) {
  std::vector<RouteRequest> reqs;
  for (int i = 0; i < n; ++i) {
    const int lane = 2 + 3 * i;
    if (lane >= side - 2) break;
    reqs.push_back({i, {lane, 2}, {side - 1 - lane, side - 3}});
  }
  return reqs;
}

// Convergent flow: cages from all edges toward a central output block.
std::vector<RouteRequest> funnel_case(int n, int side) {
  std::vector<RouteRequest> reqs;
  const int c = side / 2;
  for (int i = 0; i < n; ++i) {
    const int spread = 3 * i;
    GridCoord from;
    switch (i % 4) {
      case 0: from = {2 + spread % (side - 4), 1}; break;
      case 1: from = {2 + spread % (side - 4), side - 2}; break;
      case 2: from = {1, 2 + spread % (side - 4)}; break;
      default: from = {side - 2, 2 + spread % (side - 4)}; break;
    }
    // Targets on a separated lattice around the center.
    const GridCoord to{c - 6 + 3 * (i % 5), c - 6 + 3 * (i / 5)};
    reqs.push_back({i, from, to});
  }
  return reqs;
}

struct CaseResult {
  std::string name;
  std::size_t cages;
  RouteResult greedy;
  RouteResult astar;
};

CaseResult run_case(const std::string& name, const std::vector<RouteRequest>& reqs,
                    int side) {
  RouteConfig cfg;
  cfg.cols = side;
  cfg.rows = side;
  CaseResult out{name, reqs.size(), route_greedy(reqs, cfg), route_astar(reqs, cfg)};
  if (out.astar.success) verify_routes(reqs, out.astar, cfg);
  if (out.greedy.success) verify_routes(reqs, out.greedy, cfg);
  return out;
}

void print_router_comparison() {
  print_banner(std::cout, "CAD-R: greedy baseline vs time-expanded A* routing");
  Table t({"case", "cages", "router", "completed", "makespan [steps]", "moves"});
  Rng rng(2718);
  std::vector<CaseResult> cases;
  cases.push_back(run_case("scatter-8", scatter_case(8, 48, rng), 48));
  cases.push_back(run_case("scatter-16", scatter_case(16, 48, rng), 48));
  cases.push_back(run_case("scatter-32", scatter_case(32, 64, rng), 64));
  cases.push_back(run_case("rotation-10", rotation_case(10, 48), 48));
  cases.push_back(run_case("funnel-20", funnel_case(20, 64), 64));

  int greedy_solved = 0, astar_solved = 0;
  for (const CaseResult& c : cases) {
    auto emit = [&](const char* router, const RouteResult& r) {
      t.row()
          .cell(c.name)
          .cell(std::to_string(c.cages))
          .cell(router)
          .cell(std::to_string(c.cages - r.failed_ids.size()) + "/" +
                std::to_string(c.cages))
          .cell(r.makespan_steps)
          .cell(r.total_moves);
    };
    emit("greedy", c.greedy);
    emit("astar", c.astar);
    if (c.greedy.success) ++greedy_solved;
    if (c.astar.success) ++astar_solved;
  }
  t.print(std::cout);
  std::cout << "\nShape check: A* completes every case; greedy gridlocks on crossing\n"
               "traffic (rotation/funnel). Where both succeed, move counts are\n"
               "comparable (A* trades a few extra steps for guaranteed separation).\n"
            << "Solved cases: greedy " << greedy_solved << "/5, astar " << astar_solved
            << "/5.\n";
}

void print_scaling_table() {
  print_banner(std::cout, "CAD-R: A* scaling with cage count (64x64 grid)");
  Table t({"cages", "completed", "makespan [steps]", "moves", "moves/cage"});
  Rng rng(31415);
  for (int n : {4, 8, 16, 32, 48}) {
    const auto reqs = scatter_case(n, 64, rng);
    RouteConfig cfg;
    cfg.cols = 64;
    cfg.rows = 64;
    const RouteResult r = route_astar(reqs, cfg);
    t.row()
        .cell(std::to_string(reqs.size()))
        .cell(std::to_string(reqs.size() - r.failed_ids.size()) + "/" +
              std::to_string(reqs.size()))
        .cell(r.makespan_steps)
        .cell(r.total_moves)
        .cell(static_cast<double>(r.total_moves) / static_cast<double>(reqs.size()), 1);
  }
  t.print(std::cout);
}

void bm_route_astar(benchmark::State& state) {
  Rng rng(999);
  const auto reqs = scatter_case(static_cast<int>(state.range(0)), 64, rng);
  RouteConfig cfg;
  cfg.cols = 64;
  cfg.rows = 64;
  for (auto _ : state) {
    RouteResult r = route_astar(reqs, cfg);
    benchmark::DoNotOptimize(r.total_moves);
  }
}

void bm_route_greedy(benchmark::State& state) {
  Rng rng(999);
  const auto reqs = scatter_case(static_cast<int>(state.range(0)), 64, rng);
  RouteConfig cfg;
  cfg.cols = 64;
  cfg.rows = 64;
  for (auto _ : state) {
    RouteResult r = route_greedy(reqs, cfg);
    benchmark::DoNotOptimize(r.total_moves);
  }
}

BENCHMARK(bm_route_astar)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_route_greedy)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_router_comparison();
  print_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
